#pragma once

#include "geometry/vec2.h"

/// The region partition of the 2D-3 broadcast protocol (paper §3.3, Fig. 8).
///
/// The 2D-3 mesh is a brick wall: node (x, y) always has horizontal
/// neighbors (x±1, y) and exactly one vertical neighbor, alternating with
/// the parity of x + y.  We fix the convention
///
///   (x + y) even  ->  vertical neighbor is UP   (x, y+1)
///   (x + y) odd   ->  vertical neighbor is DOWN (x, y-1)
///
/// which reproduces the paper's worked examples: (5,4) has no neighbor
/// (5,5) (Fig. 1 discussion, §3.3), and source (10,7) yields base nodes
/// (10,5) / (10,8) and B1 = S1(17) ∪ S1(16), B2 = S2(3) ∪ S2(4) (Fig. 8).
///
/// From the source, two *base nodes* a = (i_a, j_a), b = (i_b, j_b) split
/// the grid into three regions:
///
///   region 2:  x + y ≤ i_a + j_a  and  x − y ≥ i_a − j_a   (below the source)
///   region 3:  x + y ≥ i_b + j_b  and  x − y ≤ i_b − j_b   (above the source)
///   region 1:  everything else.
namespace wsn {

/// True if the brick-wall vertical neighbor of `v` is (x, y+1).
[[nodiscard]] constexpr bool brick_has_up(Vec2 v) noexcept {
  return ((v.x + v.y) & 1) == 0;
}

/// True if the brick-wall vertical neighbor of `v` is (x, y-1).
[[nodiscard]] constexpr bool brick_has_down(Vec2 v) noexcept {
  return !brick_has_up(v);
}

/// The two base nodes derived from a source (paper §3.3):
/// if (i, j-1) is a neighbor: a = (i, j-2), b = (i, j+1);
/// otherwise:                 a = (i, j-1), b = (i, j+2).
struct BaseNodes {
  Vec2 a;
  Vec2 b;
};
[[nodiscard]] BaseNodes base_nodes_2d3(Vec2 source) noexcept;

enum class Region : int { kOne = 1, kTwo = 2, kThree = 3 };

/// Classifies `v` relative to `source`'s base nodes.
[[nodiscard]] Region region_of(Vec2 v, Vec2 source) noexcept;

/// The B1/B2 paired-diagonal base-relay sets of §3.3, as index pairs:
/// B1(i,j) = S1(c1a) ∪ S1(c1b), B2(i,j) = S2(c2a) ∪ S2(c2b).
struct DiagonalPair {
  int first;
  int second;

  [[nodiscard]] constexpr bool contains(int c) const noexcept {
    return c == first || c == second;
  }
};
[[nodiscard]] DiagonalPair b1_indices(Vec2 node) noexcept;
[[nodiscard]] DiagonalPair b2_indices(Vec2 node) noexcept;

}  // namespace wsn
