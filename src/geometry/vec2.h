#pragma once

#include <compare>
#include <cstdint>
#include <cstdlib>
#include <string>

/// Integer lattice coordinates.
///
/// The paper addresses nodes by 1-based grid ids (x, y) with x ∈ [1, m] and
/// y ∈ [1, n]; every protocol rule (relay columns i+3k, diagonal sets
/// S1/S2, the R5 sublattice) is arithmetic on these ids, so they are plain
/// ints here and the topology layer owns the mapping to dense NodeIds.
namespace wsn {

struct Vec2 {
  int x = 0;
  int y = 0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Vec2 operator*(int k, Vec2 v) noexcept {
    return {k * v.x, k * v.y};
  }
  friend constexpr bool operator==(Vec2, Vec2) noexcept = default;
  friend constexpr auto operator<=>(Vec2, Vec2) noexcept = default;
};

/// Manhattan (L1 / Lee) distance.
[[nodiscard]] constexpr int manhattan(Vec2 a, Vec2 b) noexcept {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Chebyshev (L∞) distance -- the hop metric of the 2D-8 mesh.
[[nodiscard]] constexpr int chebyshev(Vec2 a, Vec2 b) noexcept {
  const int dx = std::abs(a.x - b.x);
  const int dy = std::abs(a.y - b.y);
  return dx > dy ? dx : dy;
}

[[nodiscard]] inline std::string to_string(Vec2 v) {
  std::string out;
  out += '(';
  out += std::to_string(v.x);
  out += ',';
  out += std::to_string(v.y);
  out += ')';
  return out;
}

}  // namespace wsn
