#pragma once

#include <vector>

#include "geometry/vec2.h"

/// The paper's "diagonal axis" index sets (§3, definitions before §3.1):
///
///   S1(c) = { (x, y) : x + y = c }   -- the "/" diagonals,
///   S2(c) = { (x, y) : x - y = c }   -- the "\" diagonals.
///
/// The 2D-8 protocol relays along S1(i+j), S2(i-j) and the family
/// S2(i-j+5k); the 2D-3 protocol pairs adjacent diagonals into its B1/B2
/// base-relay sets.  These helpers keep that index arithmetic in one place.
namespace wsn {

/// S1 index of `v`: x + y.
[[nodiscard]] constexpr int s1_index(Vec2 v) noexcept { return v.x + v.y; }

/// S2 index of `v`: x - y.
[[nodiscard]] constexpr int s2_index(Vec2 v) noexcept { return v.x - v.y; }

/// True if `v` lies on the diagonal S1(c).
[[nodiscard]] constexpr bool on_s1(Vec2 v, int c) noexcept {
  return s1_index(v) == c;
}

/// True if `v` lies on the diagonal S2(c).
[[nodiscard]] constexpr bool on_s2(Vec2 v, int c) noexcept {
  return s2_index(v) == c;
}

/// True if s2_index(v) ≡ base (mod step); membership in the S2(base + k·step)
/// family used by the 2D-8 protocol (step 5).  Handles negative indices
/// correctly (floored modulus).
[[nodiscard]] bool in_s2_family(Vec2 v, int base, int step) noexcept;

/// Same for the S1(base + k·step) family.
[[nodiscard]] bool in_s1_family(Vec2 v, int base, int step) noexcept;

/// Enumerates the nodes of S1(c) inside the 1-based m×n grid, by ascending x.
[[nodiscard]] std::vector<Vec2> s1_nodes_in_grid(int c, int m, int n);

/// Enumerates the nodes of S2(c) inside the 1-based m×n grid, by ascending x.
[[nodiscard]] std::vector<Vec2> s2_nodes_in_grid(int c, int m, int n);

/// Floored modulus: result in [0, divisor) for positive divisors, matching
/// the "k is an integer" (possibly negative) quantifier in the paper's rules.
[[nodiscard]] constexpr int floor_mod(int value, int divisor) noexcept {
  const int r = value % divisor;
  return r < 0 ? r + divisor : r;
}

}  // namespace wsn
