#include "geometry/lattice.h"

#include "common/assert.h"
#include "geometry/diagonal.h"

namespace wsn {

bool in_zrelay_lattice(Vec2 v, Vec2 anchor) noexcept {
  const Vec2 d = v - anchor;
  return floor_mod(2 * d.x + d.y, 5) == 0;
}

Vec2 covering_zrelay(Vec2 v, Vec2 anchor) noexcept {
  if (in_zrelay_lattice(v, anchor)) return v;
  // Exactly one of the four unit neighbors is a lattice point: the residue
  // r = 2dx+dy mod 5 of v is in {1,2,3,4}, and the steps (±1,0)/(0,±1)
  // change r by ±2/±1, each hitting 0 for exactly one residue.
  constexpr Vec2 kSteps[] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  for (Vec2 step : kSteps) {
    if (in_zrelay_lattice(v + step, anchor)) return v + step;
  }
  WSN_ASSERT(false);  // unreachable: the lattice is a perfect Lee cover
  return v;
}

std::vector<Vec2> zrelay_lattice_in_grid(Vec2 anchor, int m, int n) {
  WSN_EXPECTS(m >= 1 && n >= 1);
  std::vector<Vec2> out;
  for (int y = 1; y <= n; ++y) {
    for (int x = 1; x <= m; ++x) {
      if (in_zrelay_lattice({x, y}, anchor)) out.push_back({x, y});
    }
  }
  return out;
}

std::vector<Vec2> uncovered_by_zrelays(Vec2 anchor, int m, int n) {
  WSN_EXPECTS(m >= 1 && n >= 1);
  std::vector<Vec2> out;
  for (int y = 1; y <= n; ++y) {
    for (int x = 1; x <= m; ++x) {
      const Vec2 cover = covering_zrelay({x, y}, anchor);
      const bool in_grid = cover.x >= 1 && cover.x <= m && cover.y >= 1 &&
                           cover.y <= n;
      if (!in_grid) out.push_back({x, y});
    }
  }
  return out;
}

}  // namespace wsn
