#include "analysis/ascii_viz.h"

#include "common/assert.h"
#include "common/string_util.h"
#include "geometry/region.h"

namespace wsn {

namespace {

char role_glyph(const RelayPlan& plan, const RelayPlan* base, NodeId id,
                bool reached) {
  if (!reached) return '!';
  if (id == plan.source) return 'S';
  const std::size_t txs = plan.tx_offsets[id].size();
  if (txs == 0) return '.';
  if (base != nullptr) {
    const std::size_t base_txs = base->tx_offsets[id].size();
    if (base_txs == 0) return '+';        // relay invented by the resolver
    if (txs > base_txs) return 'r';       // retransmission added by it
  }
  return txs > 1 ? 'R' : '#';
}

}  // namespace

std::string render_roles(const Grid2D& grid, const RelayPlan& plan,
                         const BroadcastOutcome* outcome,
                         const RelayPlan* base) {
  WSN_EXPECTS(plan.num_nodes() == grid.num_nodes());
  std::string out;
  for (int y = grid.n(); y >= 1; --y) {
    for (int x = 1; x <= grid.m(); ++x) {
      const NodeId id = grid.to_id({x, y});
      const bool reached =
          outcome == nullptr || outcome->first_rx[id] != kNeverSlot;
      out += role_glyph(plan, base, id, reached);
      if (x != grid.m()) out += ' ';
    }
    out += '\n';
  }
  return out;
}

std::string render_slots(const Grid2D& grid, const BroadcastOutcome& outcome) {
  // First-transmission slot per node; computed in one pass over the trace.
  std::vector<Slot> first_tx(grid.num_nodes(), kNeverSlot);
  for (const TxRecord& rec : outcome.transmissions) {
    if (first_tx[rec.node] == kNeverSlot) first_tx[rec.node] = rec.slot;
  }
  std::size_t width = 2;
  for (Slot s : first_tx) {
    if (s != kNeverSlot) {
      width = std::max(width, std::to_string(s).size());
    }
  }
  std::string out;
  for (int y = grid.n(); y >= 1; --y) {
    for (int x = 1; x <= grid.m(); ++x) {
      const Slot s = first_tx[grid.to_id({x, y})];
      out += pad_left(s == kNeverSlot ? std::string(".")
                                      : std::to_string(s),
                      width);
      if (x != grid.m()) out += ' ';
    }
    out += '\n';
  }
  return out;
}

std::string render_roles_3d(const Grid3D& grid, const RelayPlan& plan, int z,
                            const BroadcastOutcome* outcome) {
  WSN_EXPECTS(plan.num_nodes() == grid.num_nodes());
  WSN_EXPECTS(z >= 1 && z <= grid.l());
  std::string out;
  for (int y = grid.n(); y >= 1; --y) {
    for (int x = 1; x <= grid.m(); ++x) {
      const NodeId id = grid.to_id({x, y, z});
      const bool reached =
          outcome == nullptr || outcome->first_rx[id] != kNeverSlot;
      out += role_glyph(plan, nullptr, id, reached);
      if (x != grid.m()) out += ' ';
    }
    out += '\n';
  }
  return out;
}

std::string render_regions_2d3(const Grid2D& grid, Vec2 source) {
  WSN_EXPECTS(grid.contains(source));
  std::string out;
  for (int y = grid.n(); y >= 1; --y) {
    for (int x = 1; x <= grid.m(); ++x) {
      if (Vec2{x, y} == source) {
        out += 'S';
      } else {
        out += static_cast<char>(
            '0' + static_cast<int>(region_of({x, y}, source)));
      }
      if (x != grid.m()) out += ' ';
    }
    out += '\n';
  }
  return out;
}

}  // namespace wsn
