#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/json.h"

/// Bench regression gate: compares a current `meshbcast.bench` /
/// `meshbcast.bench.scenario` document against a committed baseline and
/// reports per-metric throughput ratios.  The gate is deliberately
/// one-sided and generous -- CI runners are noisy shared machines, so
/// only a large drop in a higher-is-better metric (runs/sec, jobs/sec,
/// cache hit rate) fails the gate; latency percentiles ride along in the
/// report for human eyes but never gate (they double-count the same
/// signal and their tails wobble hardest on loaded runners).
///
/// Comparison is by entry key: `name` for meshbcast.bench results,
/// `workers=N` for the scenario bench.  A baseline entry missing from the
/// current run is a note (or a regression under `strict`); a new entry in
/// the current run is always just a note -- adding benchmarks must never
/// fail the gate.
namespace wsn {

struct GateOptions {
  /// Allowed fractional drop: current >= baseline * (1 - tolerance)
  /// passes.  0.5 tolerates half the baseline throughput -- wide enough
  /// for runner noise, tight enough to catch an accidental O(n) -> O(n^2).
  double tolerance = 0.5;
  /// Treat a baseline entry missing from the current document as a
  /// regression instead of a note.
  bool strict = false;
};

struct GateMetric {
  std::string entry;   // result key ("simulate/2D-4", "workers=2")
  std::string metric;  // "runs_per_sec", "cold_jobs_per_sec", ...
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;  // current / baseline (0 when baseline is 0)
  bool gated = false;  // participates in pass/fail
  bool regression = false;
};

struct GateReport {
  std::string bench;  // from the current document
  std::vector<GateMetric> metrics;
  std::vector<std::string> notes;

  [[nodiscard]] std::size_t regressions() const noexcept {
    std::size_t count = 0;
    for (const GateMetric& m : metrics) {
      if (m.regression) count += 1;
    }
    return count;
  }
  [[nodiscard]] bool passed() const noexcept { return regressions() == 0; }
};

/// Compares two parsed bench documents.  Unknown schemas produce a
/// report with a note and no metrics (the gate does not guess).
[[nodiscard]] GateReport compare_bench_docs(const JsonValue& baseline,
                                            const JsonValue& current,
                                            const GateOptions& options = {});

/// File variant; a missing or unparseable file yields a note-only report
/// (missing baselines seed the trajectory, they do not fail it) except a
/// missing CURRENT file under `strict`, which is a regression.
[[nodiscard]] GateReport gate_bench_files(const std::string& baseline_path,
                                          const std::string& current_path,
                                          const GateOptions& options = {});

/// Merges per-file reports into one (concatenating metrics and notes).
[[nodiscard]] GateReport merge_reports(std::vector<GateReport> reports);

/// `meshbcast.bench.gate` JSON diff report (the CI artifact).
void write_gate_json(std::ostream& out, const GateReport& report,
                     const GateOptions& options);

/// Human-readable table for the CI log.
[[nodiscard]] std::string gate_text(const GateReport& report);

}  // namespace wsn
