#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/json.h"

/// Side-by-side bench comparison: every numeric metric of two
/// `meshbcast.bench` / `meshbcast.bench.scenario` documents, with a
/// tolerance-aware, direction-aware verdict per metric.
///
/// Where the bench *gate* (analysis/bench_gate.h) asks one question --
/// "did a gated throughput metric collapse?" -- the diff answers the
/// development question: which metrics moved, by how much, and in which
/// direction.  Direction is inferred from the metric name: `*_per_sec`
/// and `*rate` are higher-is-better, `*_ms` / `*_ns` lower-is-better;
/// anything else (workers, jobs, runs) is neutral and only flagged when
/// it changed at all.  Nothing here fails CI by itself; `bench_diff
/// --fail-on-regression` opts in.
namespace wsn {

struct DiffOptions {
  /// Fractional band treated as noise: |b/a - 1| <= tolerance reads as
  /// "equal".  0.05 suits back-to-back runs on one machine; widen it for
  /// cross-machine comparisons.
  double tolerance = 0.05;
};

struct DiffMetric {
  std::string entry;   // result key ("simulate/2D-4", "workers=2")
  std::string metric;  // "cold_jobs_per_sec", "p95_ms", ...
  double a = 0.0;
  double b = 0.0;
  double ratio = 0.0;  // b / a (0 when a is 0)
  int direction = 0;   // +1 higher-is-better, -1 lower-is-better, 0 neutral
  /// "equal", "improved", "regressed", "changed" (neutral direction),
  /// "only-a" or "only-b" (entry or metric present on one side).
  std::string verdict;
};

struct DiffReport {
  std::string bench_a;
  std::string bench_b;
  std::vector<DiffMetric> metrics;
  std::vector<std::string> notes;

  [[nodiscard]] std::size_t count(std::string_view verdict) const noexcept {
    std::size_t n = 0;
    for (const DiffMetric& m : metrics) {
      if (m.verdict == verdict) n += 1;
    }
    return n;
  }
  [[nodiscard]] std::size_t improved() const noexcept {
    return count("improved");
  }
  [[nodiscard]] std::size_t regressed() const noexcept {
    return count("regressed");
  }
};

/// Diffs two parsed bench documents.  Schema mismatches produce a
/// note-only report.
[[nodiscard]] DiffReport diff_bench_docs(const JsonValue& a,
                                         const JsonValue& b,
                                         const DiffOptions& options = {});

/// File variant; unreadable files produce a note-only report.
[[nodiscard]] DiffReport diff_bench_files(const std::string& path_a,
                                          const std::string& path_b,
                                          const DiffOptions& options = {});

/// `meshbcast.bench.diff` v1 JSON.
void write_diff_json(std::ostream& out, const DiffReport& report,
                     const DiffOptions& options);

/// Human-readable table: one line per metric, verdict last.
[[nodiscard]] std::string diff_text(const DiffReport& report);

}  // namespace wsn
