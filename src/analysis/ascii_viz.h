#pragma once

#include <string>

#include "sim/plan.h"
#include "sim/simulator.h"
#include "topology/mesh2d3.h"
#include "topology/mesh2d4.h"
#include "topology/mesh2d8.h"
#include "topology/mesh3d6.h"
#include "topology/topology.h"

/// ASCII renderings of broadcast schedules -- the terminal counterparts of
/// the paper's Figures 5, 7, 8 and 9.
///
/// Two views:
///   * `render_roles`   -- one glyph per node: 'S' source, '#' relay,
///     'R' retransmitting relay (the paper's gray nodes), '+' a relay added
///     by the resolver, '.' passive receiver, '!' unreached (never occurs
///     for the paper protocols after resolution).
///   * `render_slots`   -- each node's first transmission slot (the paper's
///     "numbers beside the edge are the transmission sequences"); '..' for
///     nodes that never transmit.
///
/// 2D meshes render as the grid, row n at the top; the 3D mesh renders one
/// XY plane.
namespace wsn {

/// Role map of a 2D plan.  `outcome` may be null (only needed to show
/// unreached nodes); `base`, when given, is the pre-resolver plan, letting
/// resolver-added relays render as '+' and resolver-added retransmissions
/// as 'r'.
[[nodiscard]] std::string render_roles(const Grid2D& grid,
                                       const RelayPlan& plan,
                                       const BroadcastOutcome* outcome = nullptr,
                                       const RelayPlan* base = nullptr);

/// First-transmission slots of a simulated 2D broadcast, 2-3 chars per cell.
[[nodiscard]] std::string render_slots(const Grid2D& grid,
                                       const BroadcastOutcome& outcome);

/// Role map of one XY plane (1-based `z`) of a 3D plan.
[[nodiscard]] std::string render_roles_3d(const Grid3D& grid,
                                          const RelayPlan& plan, int z,
                                          const BroadcastOutcome* outcome = nullptr);

/// The 2D-3 region partition (paper Fig. 8): '1'/'2'/'3' per node, 'S' at
/// the source.
[[nodiscard]] std::string render_regions_2d3(const Grid2D& grid, Vec2 source);

}  // namespace wsn
