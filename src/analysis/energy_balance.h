#pragma once

#include <vector>

#include "common/types.h"
#include "sim/simulator.h"
#include "topology/topology.h"

/// Per-node energy-balance statistics.
///
/// The paper's §1 criticizes earlier regular-topology routing work for
/// being "power efficient but [unable to] balance the power consumption of
/// the relay nodes".  Its own broadcast protocols inherit the same
/// property: a fixed source pins relay duty to the same backbone.  These
/// helpers quantify that imbalance from a simulated outcome (run with
/// SimOptions::record_node_energy), feeding the energy_balance bench and
/// the lifetime analysis.
namespace wsn {

struct EnergyBalance {
  Joules min = 0.0;
  Joules max = 0.0;
  Joules mean = 0.0;
  Joules stddev = 0.0;
  /// Gini coefficient of the per-node energy distribution in [0, 1]:
  /// 0 = perfectly even, ->1 = all burden on a few nodes.
  double gini = 0.0;
  /// max / mean; the factor by which the hottest node outspends the
  /// average -- the direct lifetime penalty of an unbalanced protocol.
  double peak_to_mean = 0.0;
  /// Node carrying the maximum burden (ties: lowest id).
  NodeId hottest = kInvalidNode;
};

/// Computes balance statistics over a per-node energy vector (e.g.
/// BroadcastOutcome::node_energy, or an accumulation across rounds).
/// The vector must be non-empty.
[[nodiscard]] EnergyBalance energy_balance(const std::vector<Joules>& energy);

/// Accumulated per-node energy over one broadcast from every source
/// (round-robin rotation) -- the balanced upper bound a duty-rotation
/// scheme could approach.  Returns the summed per-node energy vector.
[[nodiscard]] std::vector<Joules> rotating_source_energy(
    const Topology& topo, const SimOptions& options = {});

}  // namespace wsn
