#include "analysis/attribution.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.h"

namespace wsn {

namespace {

constexpr std::string_view kTimelineSchema = "meshbcast.timeline";

constexpr std::string_view kIterationSpan = "scenario.iteration";
constexpr std::string_view kComputeSpan = "scenario.job";
constexpr std::string_view kQueueWaitSpan = "queue.push_wait";
constexpr std::string_view kIdleSpan = "queue.pop_wait";
constexpr std::string_view kLockWaitSpan = "store.lock_wait";
constexpr std::string_view kEmitStallSpan = "scenario.emit_stall";

bool is_worker_label(std::string_view label) noexcept {
  return label.rfind("worker/", 0) == 0;
}

std::string format_ms(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f",
                static_cast<double>(ns) / 1e6);
  return buf;
}

std::string format_share(double share) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%5.1f%%", share * 100.0);
  return buf;
}

}  // namespace

std::vector<ParsedTimelineThread> from_snapshot(
    const std::vector<TimelineThreadDump>& threads) {
  std::vector<ParsedTimelineThread> out;
  out.reserve(threads.size());
  for (const TimelineThreadDump& dump : threads) {
    ParsedTimelineThread thread;
    thread.tid = dump.tid;
    thread.label = dump.label;
    thread.dropped = dump.dropped;
    thread.spans.reserve(dump.records.size());
    for (const TimelineRecord& record : dump.records) {
      ParsedSpan span;
      span.begin_ns = record.begin_ns;
      span.end_ns = record.end_ns;
      span.tag = record.tag;
      span.name = record.name == nullptr ? "" : record.name;
      thread.spans.push_back(std::move(span));
    }
    out.push_back(std::move(thread));
  }
  return out;
}

bool read_timeline_file(const std::string& path,
                        std::vector<ParsedTimelineThread>& out,
                        std::string* error) {
  out.clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = path + ": cannot open";
    return false;
  }
  const auto fail = [&](std::size_t line_no, const std::string& what) {
    if (error != nullptr) {
      *error = path + ":" + std::to_string(line_no) + ": " + what;
    }
    return false;
  };

  std::string line;
  std::size_t line_no = 0;
  bool have_header = false;
  // tid -> slot in `out`; tids are registration-ordered but a file may
  // omit threads that never recorded.
  const auto slot_for = [&](std::uint64_t tid) -> ParsedTimelineThread& {
    for (ParsedTimelineThread& t : out) {
      if (t.tid == tid) return t;
    }
    out.emplace_back();
    out.back().tid = static_cast<std::uint32_t>(tid);
    return out.back();
  };

  while (std::getline(in, line)) {
    line_no += 1;
    if (line.empty()) continue;
    JsonValue doc;
    if (!parse_json(line, doc) || !doc.is_object()) {
      return fail(line_no, "unparseable line");
    }
    if (!have_header) {
      if (doc.string_or("schema", "") != kTimelineSchema) {
        return fail(line_no, "not a meshbcast.timeline document");
      }
      have_header = true;
      continue;
    }
    const JsonValue* thread = doc.find("thread");
    std::uint64_t tid = 0;
    if (thread == nullptr || !thread->to_u64(tid)) {
      return fail(line_no, "line without a thread id");
    }
    ParsedTimelineThread& slot = slot_for(tid);
    if (const JsonValue* name = doc.find("name")) {
      // Span line.
      const JsonValue* begin = doc.find("begin_ns");
      const JsonValue* end = doc.find("end_ns");
      std::uint64_t begin_ns = 0;
      std::uint64_t end_ns = 0;
      if (!name->is_string() || begin == nullptr ||
          !begin->to_u64(begin_ns) || end == nullptr ||
          !end->to_u64(end_ns)) {
        return fail(line_no, "malformed span line");
      }
      ParsedSpan span;
      span.begin_ns = begin_ns;
      span.end_ns = end_ns;
      if (const JsonValue* req = doc.find("req")) {
        if (!req->to_u64(span.tag)) return fail(line_no, "malformed req");
      }
      span.name = name->as_string();
      slot.spans.push_back(std::move(span));
    } else {
      // Thread-description line.
      slot.label = doc.string_or("label", "");
      std::uint64_t dropped = 0;
      if (const JsonValue* d = doc.find("dropped")) {
        if (!d->to_u64(dropped)) return fail(line_no, "malformed dropped");
      }
      slot.dropped = dropped;
    }
  }
  if (!have_header) {
    if (error != nullptr) *error = path + ": empty file";
    return false;
  }
  return true;
}

AttributionReport attribute_timeline(
    const std::vector<ParsedTimelineThread>& threads) {
  AttributionReport report;
  report.threads.reserve(threads.size());

  for (const ParsedTimelineThread& thread : threads) {
    ThreadAttribution attr;
    attr.tid = thread.tid;
    attr.label = thread.label;
    attr.worker = is_worker_label(thread.label);
    attr.spans = thread.spans.size();
    attr.dropped = thread.dropped;
    if (thread.spans.empty()) {
      report.threads.push_back(std::move(attr));
      continue;
    }

    // The compute base: the engine's wall-to-wall per-iteration spans
    // when the timeline has them, else the bare job spans (synthetic or
    // older timelines).  With iteration spans, nested job spans are
    // informational sub-structure and must not double count.
    bool has_iterations = false;
    std::uint64_t first_begin = thread.spans.front().begin_ns;
    std::uint64_t last_end = 0;
    for (const ParsedSpan& span : thread.spans) {
      first_begin = std::min(first_begin, span.begin_ns);
      last_end = std::max(last_end, span.end_ns);
      if (span.name == kIterationSpan) has_iterations = true;
    }
    attr.wall_ns = last_end > first_begin ? last_end - first_begin : 0;
    const std::string_view compute_span =
        has_iterations ? kIterationSpan : kComputeSpan;

    // Compute intervals, for the nested-contention subtraction below.
    // Ring order is span-end order, so they arrive begin-sorted too
    // (compute spans on one thread never overlap).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals;
    for (const ParsedSpan& span : thread.spans) {
      if (span.name == compute_span) {
        intervals.emplace_back(span.begin_ns, span.end_ns);
      }
    }
    const auto nested_in_compute = [&](const ParsedSpan& span) {
      for (const auto& [begin, end] : intervals) {
        if (span.begin_ns >= begin && span.end_ns <= end) return true;
        if (begin > span.end_ns) break;
      }
      return false;
    };
    // A contention span inside a compute interval is double-covered:
    // keep its own category and carve it out of compute.  The carving is
    // accumulated and applied after the loop -- in ring (end-time) order
    // a nested wait precedes its covering span, so compute has not been
    // credited yet when the wait is seen.
    std::uint64_t carved_ns = 0;
    const auto carve = [&](const ParsedSpan& span, std::uint64_t duration) {
      if (nested_in_compute(span)) carved_ns += duration;
    };

    for (const ParsedSpan& span : thread.spans) {
      const std::uint64_t duration =
          span.end_ns > span.begin_ns ? span.end_ns - span.begin_ns : 0;
      if (span.name == compute_span) {
        attr.compute_ns += duration;
      } else if (span.name == kQueueWaitSpan) {
        attr.queue_wait_ns += duration;
        carve(span, duration);
      } else if (span.name == kIdleSpan) {
        attr.idle_ns += duration;
        carve(span, duration);
      } else if (span.name == kLockWaitSpan) {
        attr.lock_wait_ns += duration;
        carve(span, duration);
      } else if (span.name == kEmitStallSpan) {
        attr.emit_stall_ns += duration;
        carve(span, duration);
      }
      // Other names (scenario.job under an iteration, plan.resolve,
      // sim.simulate, ...) are sub-phases of a covering span and never
      // counted separately.
    }
    attr.compute_ns -= std::min(attr.compute_ns, carved_ns);
    const std::uint64_t attributed = attr.attributed_ns();
    attr.unattributed_ns =
        attr.wall_ns > attributed ? attr.wall_ns - attributed : 0;
    report.threads.push_back(std::move(attr));
  }

  // Headline: the stall category with the largest total over workers.
  std::uint64_t queue_wait = 0;
  std::uint64_t idle = 0;
  std::uint64_t lock_wait = 0;
  std::uint64_t emit_stall = 0;
  for (const ThreadAttribution& attr : report.threads) {
    if (!attr.worker) continue;
    report.workers += 1;
    report.min_worker_attributed_share = std::min(
        report.min_worker_attributed_share, attr.attributed_share());
    queue_wait += attr.queue_wait_ns;
    idle += attr.idle_ns;
    lock_wait += attr.lock_wait_ns;
    emit_stall += attr.emit_stall_ns;
  }
  const std::uint64_t top =
      std::max(std::max(queue_wait, idle), std::max(lock_wait, emit_stall));
  if (top == 0) {
    report.dominant_stall = "none";
  } else if (top == emit_stall) {
    report.dominant_stall = "emission-stall";
  } else if (top == idle) {
    report.dominant_stall = "idle";
  } else if (top == lock_wait) {
    report.dominant_stall = "lock-wait";
  } else {
    report.dominant_stall = "queue-wait";
  }
  return report;
}

std::string ThreadAttribution::dominant_stall() const {
  const std::uint64_t top = std::max(std::max(queue_wait_ns, idle_ns),
                                     std::max(lock_wait_ns, emit_stall_ns));
  if (top == 0) return "none";
  if (top == emit_stall_ns) return "emission-stall";
  if (top == idle_ns) return "idle";
  if (top == lock_wait_ns) return "lock-wait";
  return "queue-wait";
}

std::string attribution_text(const AttributionReport& report) {
  std::ostringstream out;
  out << "perf report: " << report.threads.size() << " thread(s), "
      << report.workers << " worker(s)\n";
  out << "  thread            wall_ms   compute  qu-wait     idle  "
         "lk-wait  em-stall    unattr\n";
  for (const ThreadAttribution& t : report.threads) {
    std::string name = t.label.empty()
                           ? "tid/" + std::to_string(t.tid)
                           : t.label;
    name.resize(16, ' ');
    const auto share = [&](std::uint64_t ns) {
      return format_share(t.wall_ns == 0
                              ? 0.0
                              : static_cast<double>(ns) /
                                    static_cast<double>(t.wall_ns));
    };
    out << "  " << name << ' ' << format_ms(t.wall_ns) << "  "
        << share(t.compute_ns) << "  " << share(t.queue_wait_ns) << "  "
        << share(t.idle_ns) << "  " << share(t.lock_wait_ns) << "  "
        << share(t.emit_stall_ns) << "  " << share(t.unattributed_ns);
    if (t.dropped != 0) out << "  (dropped " << t.dropped << ")";
    out << "\n";
  }
  out << "dominant stall: " << report.dominant_stall << "\n";
  if (report.workers > 0) {
    char buf[64];
    std::snprintf(buf, sizeof buf,
                  "min worker attribution: %.1f%%\n",
                  report.min_worker_attributed_share * 100.0);
    out << buf;
  }
  return out.str();
}

std::vector<RequestSpanRow> spans_for_request(
    const std::vector<ParsedTimelineThread>& threads, std::uint64_t tag) {
  std::vector<RequestSpanRow> rows;
  for (const ParsedTimelineThread& thread : threads) {
    for (const ParsedSpan& span : thread.spans) {
      if (span.tag != tag) continue;
      RequestSpanRow row;
      row.tid = thread.tid;
      row.label = thread.label.empty() ? "tid/" + std::to_string(thread.tid)
                                       : thread.label;
      row.name = span.name;
      row.begin_ns = span.begin_ns;
      row.end_ns = span.end_ns;
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const RequestSpanRow& a, const RequestSpanRow& b) {
              return a.begin_ns != b.begin_ns ? a.begin_ns < b.begin_ns
                                              : a.end_ns < b.end_ns;
            });
  return rows;
}

std::vector<RequestExtent> slowest_requests(
    const std::vector<ParsedTimelineThread>& threads, std::size_t limit) {
  std::vector<RequestExtent> extents;
  const auto slot_for = [&](std::uint64_t tag) -> RequestExtent& {
    for (RequestExtent& e : extents) {
      if (e.tag == tag) return e;
    }
    extents.emplace_back();
    extents.back().tag = tag;
    extents.back().begin_ns = ~std::uint64_t{0};
    return extents.back();
  };
  for (const ParsedTimelineThread& thread : threads) {
    for (const ParsedSpan& span : thread.spans) {
      if (span.tag == 0) continue;
      RequestExtent& extent = slot_for(span.tag);
      extent.begin_ns = std::min(extent.begin_ns, span.begin_ns);
      extent.end_ns = std::max(extent.end_ns, span.end_ns);
      extent.spans += 1;
    }
  }
  std::sort(extents.begin(), extents.end(),
            [](const RequestExtent& a, const RequestExtent& b) {
              return a.wall_ns() != b.wall_ns() ? a.wall_ns() > b.wall_ns()
                                                : a.tag < b.tag;
            });
  if (limit != 0 && extents.size() > limit) extents.resize(limit);
  return extents;
}

std::string request_breakdown_text(const std::vector<RequestSpanRow>& rows,
                                   std::uint64_t tag) {
  std::ostringstream out;
  if (rows.empty()) {
    out << "request " << tag << ": no tagged spans in timeline\n";
    return out.str();
  }
  std::uint64_t first_begin = rows.front().begin_ns;
  std::uint64_t last_end = 0;
  for (const RequestSpanRow& row : rows) {
    first_begin = std::min(first_begin, row.begin_ns);
    last_end = std::max(last_end, row.end_ns);
  }
  const std::uint64_t wall =
      last_end > first_begin ? last_end - first_begin : 0;
  out << "request " << tag << ": " << rows.size() << " span(s), wall "
      << format_ms(wall) << " ms\n";
  out << "  offset_ms    dur_ms  thread            stage\n";
  for (const RequestSpanRow& row : rows) {
    const std::uint64_t dur =
        row.end_ns > row.begin_ns ? row.end_ns - row.begin_ns : 0;
    std::string label = row.label;
    label.resize(16, ' ');
    char buf[64];
    std::snprintf(buf, sizeof buf, "  %9.2f %9.2f  ",
                  static_cast<double>(row.begin_ns - first_begin) / 1e6,
                  static_cast<double>(dur) / 1e6);
    out << buf << label << "  " << row.name << "\n";
  }
  return out.str();
}

void write_attribution_json(std::ostream& out,
                            const AttributionReport& report,
                            const MetricsSnapshot* metrics) {
  JsonWriter w;
  w.begin_object()
      .member("schema", "meshbcast.perf_report")
      .member("version", std::uint64_t{1})
      .member("workers", std::uint64_t{report.workers})
      .member("dominant_stall", report.dominant_stall)
      .member("min_worker_attributed_share",
              report.min_worker_attributed_share);
  w.key("threads").begin_array();
  for (const ThreadAttribution& t : report.threads) {
    w.begin_object()
        .member("tid", std::uint64_t{t.tid})
        .member("label", t.label)
        .member("worker", t.worker)
        .member("spans", std::uint64_t{t.spans})
        .member("dropped", std::uint64_t{t.dropped})
        .member("wall_ns", std::uint64_t{t.wall_ns});
    w.key("categories").begin_object();
    w.member("compute", std::uint64_t{t.compute_ns})
        .member("queue-wait", std::uint64_t{t.queue_wait_ns})
        .member("idle", std::uint64_t{t.idle_ns})
        .member("lock-wait", std::uint64_t{t.lock_wait_ns})
        .member("emission-stall", std::uint64_t{t.emit_stall_ns})
        .end_object();
    w.member("unattributed_ns", std::uint64_t{t.unattributed_ns})
        .member("attributed_share", t.attributed_share())
        .member("dominant_stall", t.dominant_stall())
        .end_object();
  }
  w.end_array();
  if (metrics != nullptr) {
    static constexpr std::string_view kContention[] = {
        "scenario.queue_pop_wait_ms", "scenario.queue_push_wait_ms",
        "scenario.emit_stall_ms", "scenario.queue_wait_ms",
        "store.mem.lock_wait_ms"};
    w.key("contention_histograms").begin_object();
    for (const std::string_view name : kContention) {
      const HistogramSnapshot* h = metrics->histogram(name);
      if (h == nullptr) continue;
      w.key(name).begin_object();
      w.member("count", h->count)
          .member("sum", h->sum)
          .member("p50", h->percentile(0.50))
          .member("p95", h->percentile(0.95))
          .member("p99", h->percentile(0.99))
          .end_object();
    }
    w.end_object();
  }
  w.end_object();
  out << std::move(w).str() << "\n";
}

}  // namespace wsn
