#include "analysis/resilience.h"

#include <algorithm>
#include <memory>

#include "common/assert.h"
#include "common/csv.h"
#include "common/parallel.h"
#include "common/random.h"
#include "fault/models.h"
#include "obs/profile.h"
#include "protocol/etx_planner.h"

namespace wsn {

namespace {

/// Stream-splits the master seed so every (cell, trial) pair gets a
/// decorrelated seed, stable under reordering of the sweep loops.
std::uint64_t trial_seed(std::uint64_t master, std::size_t cell,
                         std::size_t trial) noexcept {
  std::uint64_t state = master;
  state ^= splitmix64(state) + cell;
  state ^= splitmix64(state) + trial;
  return splitmix64(state);
}

struct TrialResult {
  double reachability = 0.0;
  bool full = false;
  double delay = 0.0;
  double tx = 0.0;
  Joules energy = 0.0;
  double lost_fading = 0.0;
  double lost_crash = 0.0;
};

}  // namespace

const ResilienceCell* ResilienceSweep::find(double loss_rate,
                                            RecoveryPolicy policy) const {
  for (const ResilienceCell& cell : cells) {
    if (cell.loss_rate == loss_rate && cell.policy == policy) return &cell;
  }
  return nullptr;
}

void ResilienceSweep::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.typed_row("topology", "loss_rate", "policy", "trials", "planned_tx",
                "mean_reachability", "min_reachability", "full_reach_share",
                "mean_delay", "mean_tx", "mean_energy_j",
                "mean_lost_fading", "mean_lost_crash");
  for (const ResilienceCell& cell : cells) {
    csv.typed_row(topology, cell.loss_rate, to_string(cell.policy),
                  cell.trials, cell.planned_tx, cell.mean_reachability,
                  cell.min_reachability, cell.full_reach_share,
                  cell.mean_delay, cell.mean_tx, cell.mean_energy,
                  cell.mean_lost_fading, cell.mean_lost_crash);
  }
}

ResilienceSweep run_resilience_sweep(const Topology& topo,
                                     const RelayPlan& plan,
                                     const ResilienceConfig& config) {
  WSN_EXPECTS(config.trials >= 1);
  WSN_EXPECTS(!config.loss_rates.empty());
  WSN_EXPECTS(!config.policies.empty());
  WSN_SPAN("resilience.sweep");

  ResilienceSweep sweep;
  sweep.topology = topo.name();

  // Each policy's augmented plan is deterministic; build it once.
  std::vector<RelayPlan> plans;
  plans.reserve(config.policies.size());
  for (RecoveryPolicy policy : config.policies) {
    plans.push_back(apply_recovery(topo, plan, policy, config.repeat_k));
  }

  std::size_t cell_index = 0;
  for (double loss_rate : config.loss_rates) {
    for (std::size_t p = 0; p < config.policies.size(); ++p) {
      const RelayPlan& recovered = plans[p];

      const std::vector<TrialResult> results =
          parallel_map<TrialResult>(
              config.trials,
              [&](std::size_t trial) {
                WSN_SPAN("resilience.trial");
                const std::uint64_t seed =
                    trial_seed(config.seed, cell_index, trial);
                // Per-trial models: FaultModel is stateful and must not be
                // shared across the concurrent trials.
                std::unique_ptr<FaultModel> medium;
                if (config.bursty) {
                  medium = std::make_unique<GilbertElliottModel>(
                      GilbertElliottModel::from_mean_loss(
                          loss_rate, config.burst_len, seed));
                } else {
                  medium =
                      std::make_unique<IidLossModel>(loss_rate, seed);
                }
                std::unique_ptr<CrashScheduleModel> crashes;
                std::unique_ptr<CompositeFaultModel> composite;
                FaultModel* faults = medium.get();
                if (config.crash_prob > 0.0) {
                  std::uint64_t crash_state = seed ^ 0xc7a5ull;
                  crashes = std::make_unique<CrashScheduleModel>(
                      CrashScheduleModel::sample(
                          topo.num_nodes(), config.crash_prob,
                          config.crash_horizon, config.crash_outage,
                          splitmix64(crash_state)));
                  composite = std::make_unique<CompositeFaultModel>(
                      std::vector<FaultModel*>{medium.get(),
                                               crashes.get()});
                  faults = composite.get();
                }

                SimOptions options;
                options.faults = faults;
                const BroadcastOutcome outcome =
                    simulate_broadcast(topo, recovered, options);
                const BroadcastStats& s = outcome.stats;
                return TrialResult{
                    s.reachability(),
                    s.fully_reached(),
                    static_cast<double>(s.delay),
                    static_cast<double>(s.tx),
                    s.total_energy(),
                    static_cast<double>(s.lost_to_fading),
                    static_cast<double>(s.lost_to_crash)};
              },
              config.workers);

      ResilienceCell cell;
      cell.loss_rate = loss_rate;
      cell.policy = config.policies[p];
      cell.trials = config.trials;
      cell.planned_tx = recovered.planned_tx();
      cell.min_reachability = 1.0;
      for (const TrialResult& r : results) {
        cell.mean_reachability += r.reachability;
        cell.min_reachability = std::min(cell.min_reachability,
                                         r.reachability);
        cell.full_reach_share += r.full ? 1.0 : 0.0;
        cell.mean_delay += r.delay;
        cell.mean_tx += r.tx;
        cell.mean_energy += r.energy;
        cell.mean_lost_fading += r.lost_fading;
        cell.mean_lost_crash += r.lost_crash;
      }
      const double inv = 1.0 / static_cast<double>(config.trials);
      cell.mean_reachability *= inv;
      cell.full_reach_share *= inv;
      cell.mean_delay *= inv;
      cell.mean_tx *= inv;
      cell.mean_energy *= inv;
      cell.mean_lost_fading *= inv;
      cell.mean_lost_crash *= inv;
      sweep.cells.push_back(cell);
      cell_index += 1;
    }
  }
  return sweep;
}

void PlannerComparison::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.typed_row("topology", "loss_rate", "trials", "geo_planned_tx",
                "geo_coverage", "geo_full_share", "geo_tx",
                "etx_planned_tx", "etx_coverage", "etx_full_share",
                "etx_tx", "etx_retries", "etx_exhausted_share");
  for (const PlannerComparisonCell& cell : cells) {
    csv.typed_row(topology, cell.loss_rate, cell.trials,
                  cell.geo_planned_tx, cell.geo_coverage,
                  cell.geo_full_share, cell.geo_tx, cell.etx_planned_tx,
                  cell.etx_coverage, cell.etx_full_share, cell.etx_tx,
                  cell.etx_retries, cell.etx_exhausted_share);
  }
}

PlannerComparison run_planner_comparison(
    const Topology& topo, const RelayPlan& geometric_plan,
    const PlannerComparisonConfig& config) {
  WSN_EXPECTS(config.trials >= 1);
  WSN_EXPECTS(!config.loss_rates.empty());
  WSN_EXPECTS(geometric_plan.num_nodes() == topo.num_nodes());
  WSN_SPAN("resilience.planner_comparison");

  PlannerComparison comparison;
  comparison.topology = topo.name();

  const RelayPlan geo_recovered =
      repeat_k(geometric_plan, config.repeat_k);
  const NodeId source = geometric_plan.source;

  for (std::size_t li = 0; li < config.loss_rates.size(); ++li) {
    const double loss_rate = config.loss_rates[li];

    // The ETX arm learns the channel once per condition -- a dedicated
    // probe stream, decorrelated from every trial's channel, the way a
    // deployment's estimator samples a different time window than the
    // broadcast it later plans.
    const std::uint64_t probe_seed =
        trial_seed(config.seed ^ 0x9e0bEull, li, 0);
    GilbertElliottModel probe_channel = GilbertElliottModel::from_mean_loss(
        loss_rate, config.burst_len, probe_seed);
    const std::vector<double> quality =
        estimate_link_quality(topo, probe_channel, config.estimator);
    const RelayPlan etx = etx_plan(topo, source, quality, SimOptions{},
                                   nullptr, config.planner);

    struct PairedResult {
      double geo_coverage = 0.0;
      bool geo_full = false;
      double geo_tx = 0.0;
      double etx_coverage = 0.0;
      bool etx_full = false;
      double etx_tx = 0.0;
      double retries = 0.0;
      bool exhausted = false;
    };
    const std::vector<PairedResult> results = parallel_map<PairedResult>(
        config.trials,
        [&](std::size_t trial) {
          WSN_SPAN("resilience.comparison_trial");
          const std::uint64_t seed = trial_seed(config.seed, li, trial);
          PairedResult r;
          {
            // Both arms face the *same* channel realization: paired
            // trials, so the comparison is between plans, not draws.
            GilbertElliottModel channel =
                GilbertElliottModel::from_mean_loss(loss_rate,
                                                    config.burst_len, seed);
            SimOptions options;
            options.faults = &channel;
            const BroadcastOutcome outcome =
                simulate_broadcast(topo, geo_recovered, options);
            r.geo_coverage = outcome.stats.reachability();
            r.geo_full = outcome.stats.fully_reached();
            r.geo_tx = static_cast<double>(outcome.stats.tx);
          }
          {
            GilbertElliottModel channel =
                GilbertElliottModel::from_mean_loss(loss_rate,
                                                    config.burst_len, seed);
            SimOptions options;
            options.faults = &channel;
            AdaptiveArqReport report;
            const BroadcastOutcome outcome = run_adaptive_arq(
                topo, etx, options, config.arq, &report, quality);
            r.etx_coverage = outcome.stats.reachability();
            r.etx_full = outcome.stats.fully_reached();
            r.etx_tx = static_cast<double>(outcome.stats.tx);
            r.retries = static_cast<double>(report.retries);
            r.exhausted = report.budget_exhausted;
          }
          return r;
        },
        config.workers);

    PlannerComparisonCell cell;
    cell.loss_rate = loss_rate;
    cell.trials = config.trials;
    cell.geo_planned_tx = geo_recovered.planned_tx();
    cell.etx_planned_tx = etx.planned_tx();
    for (const PairedResult& r : results) {
      cell.geo_coverage += r.geo_coverage;
      cell.geo_full_share += r.geo_full ? 1.0 : 0.0;
      cell.geo_tx += r.geo_tx;
      cell.etx_coverage += r.etx_coverage;
      cell.etx_full_share += r.etx_full ? 1.0 : 0.0;
      cell.etx_tx += r.etx_tx;
      cell.etx_retries += r.retries;
      cell.etx_exhausted_share += r.exhausted ? 1.0 : 0.0;
    }
    const double inv = 1.0 / static_cast<double>(config.trials);
    cell.geo_coverage *= inv;
    cell.geo_full_share *= inv;
    cell.geo_tx *= inv;
    cell.etx_coverage *= inv;
    cell.etx_full_share *= inv;
    cell.etx_tx *= inv;
    cell.etx_retries *= inv;
    cell.etx_exhausted_share *= inv;
    comparison.cells.push_back(cell);
  }
  return comparison;
}

}  // namespace wsn
