#include "analysis/bench_gate.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

namespace wsn {

namespace {

/// One parsed result row: a key and its numeric fields, split into gated
/// (higher-is-better throughput) and advisory (latency) metrics.
struct EntryMetrics {
  std::string key;
  std::vector<std::pair<std::string, double>> gated;
  std::vector<std::pair<std::string, double>> advisory;
};

constexpr std::string_view kGatedMetrics[] = {
    "runs_per_sec", "cold_jobs_per_sec", "warm_jobs_per_sec",
    "cache_hit_rate"};
constexpr std::string_view kAdvisoryMetrics[] = {
    "mean_ms",
    "p50_ms",
    "p95_ms",
    // Service loadgen tail latency and admission shedding
    // (meshbcast.bench.service): advisory -- both swing with machine
    // load, and a shed is the admission control *working*.
    "p99_ms",
    "shed_rate",
    "queue_wait_ms_mean",
    // Deduped scenario-bench spread (schema v2): the repeat-aware min/max
    // around the gated means.  Advisory only -- spread wobbles hardest on
    // loaded runners.
    "cold_jobs_per_sec_min",
    "cold_jobs_per_sec_max",
    "warm_jobs_per_sec_min",
    "warm_jobs_per_sec_max",
};

bool is_bench_schema(const JsonValue& doc, std::string& schema) {
  schema = doc.string_or("schema", "");
  return schema == "meshbcast.bench" ||
         schema == "meshbcast.bench.scenario" ||
         schema == "meshbcast.bench.service";
}

std::vector<EntryMetrics> collect_entries(const JsonValue& doc) {
  std::vector<EntryMetrics> out;
  std::map<std::string, std::size_t> key_counts;
  const JsonValue* results = doc.find("results");
  if (results == nullptr || !results->is_array()) return out;
  for (const JsonValue& row : results->as_array()) {
    if (!row.is_object()) continue;
    EntryMetrics entry;
    if (const JsonValue* name = row.find("name");
        name != nullptr && name->is_string()) {
      entry.key = name->as_string();
    } else if (const JsonValue* workers = row.find("workers")) {
      std::uint64_t w = 0;
      if (workers->to_u64(w)) {
        entry.key = "workers=" + std::to_string(w);
      }
    }
    if (entry.key.empty()) continue;
    // A bench may legally repeat a key (scenario_throughput re-measures
    // workers=1 after warming); suffix repeats so baseline and current
    // rows pair up positionally per key.
    const std::size_t occurrence = ++key_counts[entry.key];
    if (occurrence > 1) {
      entry.key.push_back('#');
      entry.key.append(std::to_string(occurrence));
    }
    for (const std::string_view metric : kGatedMetrics) {
      if (const JsonValue* v = row.find(metric);
          v != nullptr && v->is_number()) {
        entry.gated.emplace_back(std::string(metric), v->as_number());
      }
    }
    for (const std::string_view metric : kAdvisoryMetrics) {
      if (const JsonValue* v = row.find(metric);
          v != nullptr && v->is_number()) {
        entry.advisory.emplace_back(std::string(metric), v->as_number());
      }
    }
    out.push_back(std::move(entry));
  }
  return out;
}

const EntryMetrics* find_entry(const std::vector<EntryMetrics>& entries,
                               const std::string& key) {
  for (const EntryMetrics& e : entries) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

double metric_or(const std::vector<std::pair<std::string, double>>& metrics,
                 const std::string& name, double fallback) {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  return fallback;
}

}  // namespace

GateReport compare_bench_docs(const JsonValue& baseline,
                              const JsonValue& current,
                              const GateOptions& options) {
  GateReport report;
  std::string baseline_schema;
  std::string current_schema;
  if (!is_bench_schema(baseline, baseline_schema)) {
    report.notes.push_back("baseline: unknown schema \"" + baseline_schema +
                           "\"; skipped");
    return report;
  }
  if (!is_bench_schema(current, current_schema)) {
    report.notes.push_back("current: unknown schema \"" + current_schema +
                           "\"; skipped");
    return report;
  }
  if (baseline_schema != current_schema) {
    report.notes.push_back("schema mismatch: baseline " + baseline_schema +
                           " vs current " + current_schema + "; skipped");
    return report;
  }
  report.bench = current.string_or("bench", "");

  const std::vector<EntryMetrics> base_entries = collect_entries(baseline);
  const std::vector<EntryMetrics> cur_entries = collect_entries(current);

  for (const EntryMetrics& base : base_entries) {
    const EntryMetrics* cur = find_entry(cur_entries, base.key);
    if (cur == nullptr) {
      if (options.strict) {
        GateMetric m;
        m.entry = base.key;
        m.metric = "(missing)";
        m.gated = true;
        m.regression = true;
        report.metrics.push_back(std::move(m));
      } else {
        report.notes.push_back("baseline entry \"" + base.key +
                               "\" missing from current run");
      }
      continue;
    }
    for (const auto& [metric, base_value] : base.gated) {
      GateMetric m;
      m.entry = base.key;
      m.metric = metric;
      m.baseline = base_value;
      m.current = metric_or(cur->gated, metric, 0.0);
      m.ratio = base_value > 0.0 ? m.current / base_value : 0.0;
      m.gated = true;
      m.regression =
          base_value > 0.0 && m.current < base_value * (1.0 - options.tolerance);
      report.metrics.push_back(std::move(m));
    }
    for (const auto& [metric, base_value] : base.advisory) {
      GateMetric m;
      m.entry = base.key;
      m.metric = metric;
      m.baseline = base_value;
      m.current = metric_or(cur->advisory, metric, 0.0);
      m.ratio = base_value > 0.0 ? m.current / base_value : 0.0;
      m.gated = false;
      report.metrics.push_back(std::move(m));
    }
  }
  for (const EntryMetrics& cur : cur_entries) {
    if (find_entry(base_entries, cur.key) == nullptr) {
      report.notes.push_back("new entry \"" + cur.key +
                             "\" (no baseline; not gated)");
    }
  }
  return report;
}

GateReport gate_bench_files(const std::string& baseline_path,
                            const std::string& current_path,
                            const GateOptions& options) {
  GateReport report;
  const auto read_doc = [&report](const std::string& path, JsonValue& doc,
                                  std::string_view role) {
    if (!std::filesystem::exists(path)) {
      report.notes.push_back(std::string(role) + " " + path +
                             " does not exist");
      return false;
    }
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!parse_json(buffer.str(), doc, &error)) {
      report.notes.push_back(std::string(role) + " " + path +
                             " unparseable: " + error);
      return false;
    }
    return true;
  };

  JsonValue baseline;
  JsonValue current;
  if (!read_doc(baseline_path, baseline, "baseline")) {
    // No baseline yet: the current run seeds the trajectory.
    return report;
  }
  if (!read_doc(current_path, current, "current")) {
    if (options.strict) {
      GateMetric m;
      m.entry = current_path;
      m.metric = "(missing current)";
      m.gated = true;
      m.regression = true;
      report.metrics.push_back(std::move(m));
    }
    return report;
  }
  GateReport compared = compare_bench_docs(baseline, current, options);
  compared.notes.insert(compared.notes.begin(), report.notes.begin(),
                        report.notes.end());
  return compared;
}

GateReport merge_reports(std::vector<GateReport> reports) {
  GateReport merged;
  for (GateReport& r : reports) {
    if (merged.bench.empty()) {
      merged.bench = r.bench;
    } else if (!r.bench.empty()) {
      merged.bench += "," + r.bench;
    }
    for (GateMetric& m : r.metrics) merged.metrics.push_back(std::move(m));
    for (std::string& n : r.notes) merged.notes.push_back(std::move(n));
  }
  return merged;
}

void write_gate_json(std::ostream& out, const GateReport& report,
                     const GateOptions& options) {
  JsonWriter w;
  w.begin_object()
      .member("schema", "meshbcast.bench.gate")
      .member("version", std::uint64_t{1})
      .member("bench", report.bench)
      .member("tolerance", options.tolerance)
      .member("passed", report.passed())
      .member("regressions", std::uint64_t{report.regressions()});
  w.key("metrics").begin_array();
  for (const GateMetric& m : report.metrics) {
    w.begin_object()
        .member("entry", m.entry)
        .member("metric", m.metric)
        .member("baseline", m.baseline)
        .member("current", m.current)
        .member("ratio", m.ratio)
        .member("gated", m.gated)
        .member("regression", m.regression)
        .end_object();
  }
  w.end_array();
  w.key("notes").begin_array();
  for (const std::string& n : report.notes) w.value(n);
  w.end_array().end_object();
  out << std::move(w).str() << "\n";
}

std::string gate_text(const GateReport& report) {
  std::ostringstream out;
  for (const GateMetric& m : report.metrics) {
    char line[256];
    std::snprintf(line, sizeof line, "%-28s %-20s %12.3f -> %12.3f  x%.3f%s%s\n",
                  m.entry.c_str(), m.metric.c_str(), m.baseline, m.current,
                  m.ratio, m.gated ? "" : "  (advisory)",
                  m.regression ? "  REGRESSION" : "");
    out << line;
  }
  for (const std::string& n : report.notes) out << "note: " << n << "\n";
  out << (report.passed() ? "gate: PASS" : "gate: FAIL") << " ("
      << report.regressions() << " regressions, "
      << report.metrics.size() << " metrics)\n";
  return out.str();
}

}  // namespace wsn
