#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "fault/adaptive.h"
#include "fault/link_estimator.h"
#include "fault/recovery.h"
#include "protocol/etx_planner.h"
#include "sim/plan.h"
#include "sim/simulator.h"
#include "topology/topology.h"

/// Resilience sweeps: Monte-Carlo degradation curves under fault
/// injection.
///
/// The paper's tables assume a perfect medium; the first question any
/// deployment asks is how the relay plans degrade when links drop packets
/// or nodes die mid-broadcast (cf. Xin & Xia's noisy-mesh evaluation and
/// Mehta & Kwak's delivery-ratio ranking).  This harness answers it: for
/// each (loss rate x recovery policy) cell it runs N independently seeded
/// trials of one broadcast -- i.i.d. or bursty link loss, optionally
/// composed with sampled node crashes -- and folds the outcomes into
/// reachability / delay / energy statistics.  Trials run via
/// `parallel_for`, one fault-model instance per trial, and the whole sweep
/// is a pure function of its config: same seed, same curves.
namespace wsn {

struct ResilienceConfig {
  /// Mean per-link loss probabilities to sweep (the x axis).
  std::vector<double> loss_rates = {0.0, 0.02, 0.05, 0.1, 0.2, 0.3};
  /// Recovery policies to compare (the curve family).
  std::vector<RecoveryPolicy> policies = {RecoveryPolicy::kNone,
                                          RecoveryPolicy::kRepeatK,
                                          RecoveryPolicy::kEchoRepair};
  /// Monte-Carlo trials per cell.
  std::size_t trials = 64;
  /// Repetition factor of the repeat-k policy.
  unsigned repeat_k = 2;
  /// false: i.i.d. loss per link-slot; true: Gilbert-Elliott bursty loss
  /// with the same mean rate and `burst_len` mean bad-burst length.
  bool bursty = false;
  double burst_len = 4.0;
  /// Per-node crash probability per trial (0 disables crash injection);
  /// crash slots are uniform in [1, crash_horizon], outages last
  /// `crash_outage` slots (0 = permanent).
  double crash_prob = 0.0;
  Slot crash_horizon = 32;
  Slot crash_outage = 0;
  /// Master seed; trial t of cell c derives its own stream from it.
  std::uint64_t seed = 0x5eed;
  /// parallel_for worker count (0 = all cores).
  std::size_t workers = 0;
};

/// One (loss rate, policy) cell, aggregated over the trials.
struct ResilienceCell {
  double loss_rate = 0.0;
  RecoveryPolicy policy = RecoveryPolicy::kNone;
  std::size_t trials = 0;
  std::size_t planned_tx = 0;  // the recovered plan's scheduled Tx
  double mean_reachability = 0.0;
  double min_reachability = 0.0;
  double full_reach_share = 0.0;  // fraction of trials reaching everyone
  double mean_delay = 0.0;
  double mean_tx = 0.0;
  Joules mean_energy = 0.0;
  double mean_lost_fading = 0.0;
  double mean_lost_crash = 0.0;
};

struct ResilienceSweep {
  std::string topology;  // Topology::name() of the swept instance
  std::vector<ResilienceCell> cells;  // loss-rate-major, policy-minor

  /// The cell at (loss_rate, policy), or nullptr if not swept.
  [[nodiscard]] const ResilienceCell* find(double loss_rate,
                                           RecoveryPolicy policy) const;

  /// CSV: one header plus one row per cell (degradation curves ready for
  /// external plotting).
  void write_csv(std::ostream& out) const;
};

/// Runs the sweep for one topology + base plan.  The base plan should
/// already be resolved to full reachability; each policy's augmented plan
/// is built once and reused across that policy's cells.
[[nodiscard]] ResilienceSweep run_resilience_sweep(
    const Topology& topo, const RelayPlan& plan,
    const ResilienceConfig& config);

// --- planner comparison ----------------------------------------------------
//
// The head-to-head the ETX work is judged by: geometric plan + blind
// repeat-k versus ETX plan + adaptive ARQ, under the same Gilbert-Elliott
// fault matrices.  The geometric arm prices redundancy up front (k times
// the plan, loss or no loss); the ETX arm learns the links once per
// channel condition, plans by them, and spends retries only on observed
// damage.  One cell per swept loss rate holds both arms' delivered
// coverage and total transmissions, aggregated over seeded trials.

struct PlannerComparisonConfig {
  /// Mean loss rates of the Gilbert-Elliott channel (the x axis).
  std::vector<double> loss_rates = {0.05, 0.1, 0.2, 0.3};
  /// Mean bad-burst length of the channel.
  double burst_len = 4.0;
  /// Monte-Carlo trials per cell (same trial seeds for both arms: paired
  /// comparison on identical channels).
  std::size_t trials = 32;
  /// Repeat factor of the geometric arm's recovery.
  unsigned repeat_k = 2;
  /// The ETX arm's recovery.
  AdaptiveArqConfig arq{};
  /// Probe configuration of the per-loss-rate link learning pass.
  LinkEstimatorConfig estimator{};
  /// ETX planner tuning.
  EtxRelayPlanner::Config planner{};
  /// Master seed; probe and trial streams derive from it.
  std::uint64_t seed = 0x5eed;
  /// parallel_for worker count (0 = all cores).
  std::size_t workers = 0;
};

/// One loss rate, both arms, aggregated over the paired trials.
struct PlannerComparisonCell {
  double loss_rate = 0.0;
  std::size_t trials = 0;
  // geometric + repeat-k
  std::size_t geo_planned_tx = 0;
  double geo_coverage = 0.0;      // mean reachability
  double geo_full_share = 0.0;    // fraction of trials reaching everyone
  double geo_tx = 0.0;            // mean transmissions actually fired
  // etx + adaptive ARQ
  std::size_t etx_planned_tx = 0;
  double etx_coverage = 0.0;
  double etx_full_share = 0.0;
  double etx_tx = 0.0;            // includes the retries
  double etx_retries = 0.0;       // mean retries spent
  double etx_exhausted_share = 0.0;  // trials that ran out of budget
};

struct PlannerComparison {
  std::string topology;
  std::vector<PlannerComparisonCell> cells;  // one per loss rate, in order

  /// CSV: one header plus one row per cell.
  void write_csv(std::ostream& out) const;
};

/// Runs the comparison for one topology.  `geometric_plan` is the
/// already-resolved geometric arm (e.g. `paper_plan`); its source also
/// sources the ETX arm.  Deterministic in the config.
[[nodiscard]] PlannerComparison run_planner_comparison(
    const Topology& topo, const RelayPlan& geometric_plan,
    const PlannerComparisonConfig& config);

}  // namespace wsn
