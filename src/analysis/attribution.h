#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeline.h"

/// Wall-time attribution over a span timeline (obs/timeline.h): where did
/// each thread's run actually go?
///
/// The scenario engine's instrumentation tags every interesting interval
/// with a well-known span name; this module folds a timeline dump into a
/// per-thread decomposition over five categories:
///
///   compute         "scenario.iteration" (the engine's wall-to-wall
///                   worker-loop pass) minus contention spans nested
///                   inside it -- a plan-store lock wait during an
///                   iteration is lock-wait, not compute.  Timelines
///                   without iteration spans (synthetic fixtures, other
///                   producers) fall back to "scenario.job".  Sub-phase
///                   spans (scenario.job under an iteration, plan.resolve,
///                   sim.simulate, ...) nest inside the compute base and
///                   are already covered by it, so they are never added
///                   again.
///   queue-wait      "queue.push_wait" -- the producer blocked on a full
///                   queue (backpressure working as designed).
///   idle            "queue.pop_wait" -- a worker blocked on an empty
///                   queue: no work available.
///   lock-wait       "store.lock_wait" -- blocked acquisitions of the
///                   plan-cache shard mutexes.
///   emission-stall  "scenario.emit_stall" -- the serialized in-order
///                   flush + manifest rewrite under the collector lock.
///
/// Everything not covered (scheduler preemption between spans, startup,
/// unknown span names) lands in `unattributed`.  The acceptance bar the
/// tests hold this to: on an instrumented engine run, every worker
/// thread's attributed share is >= 0.9 of its wall time.
///
/// Input comes either from a live `Timeline::snapshot()` (via
/// `from_snapshot`) or from a `meshbcast.timeline` v1 JSONL file (via
/// `read_timeline_file`) -- the parsed form owns its strings, so the
/// report outlives any timeline internals.
namespace wsn {

/// One span with an owned name -- the file-parseable mirror of
/// TimelineRecord.  `tag` is the request id the span was recorded for
/// (0 = untagged; the `"req"` member of a span line).
struct ParsedSpan {
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t tag = 0;
  std::string name;
};

/// One thread's spans, oldest-first -- the mirror of TimelineThreadDump.
struct ParsedTimelineThread {
  std::uint32_t tid = 0;
  std::string label;
  std::uint64_t dropped = 0;
  std::vector<ParsedSpan> spans;
};

/// Adapts a live snapshot (copies the names into owned strings).
[[nodiscard]] std::vector<ParsedTimelineThread> from_snapshot(
    const std::vector<TimelineThreadDump>& threads);

/// Reads a `meshbcast.timeline` v1 JSONL file.  Returns false (with a
/// diagnostic in `error` when non-null) on a missing file, a wrong
/// schema, or a malformed line.
[[nodiscard]] bool read_timeline_file(const std::string& path,
                                      std::vector<ParsedTimelineThread>& out,
                                      std::string* error = nullptr);

/// Per-thread wall-time decomposition.  All times in nanoseconds; `wall`
/// is the extent from the thread's first span begin to its last span end.
struct ThreadAttribution {
  std::uint32_t tid = 0;
  std::string label;
  bool worker = false;  // label matches "worker/<n>"
  std::uint64_t spans = 0;
  std::uint64_t dropped = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t compute_ns = 0;
  std::uint64_t queue_wait_ns = 0;
  std::uint64_t idle_ns = 0;
  std::uint64_t lock_wait_ns = 0;
  std::uint64_t emit_stall_ns = 0;
  std::uint64_t unattributed_ns = 0;

  [[nodiscard]] std::uint64_t attributed_ns() const noexcept {
    return compute_ns + queue_wait_ns + idle_ns + lock_wait_ns +
           emit_stall_ns;
  }
  [[nodiscard]] double attributed_share() const noexcept {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(attributed_ns()) /
                              static_cast<double>(wall_ns);
  }
  /// The largest non-compute category ("queue-wait", "idle", "lock-wait"
  /// or "emission-stall"); "none" when the thread never stalled.
  [[nodiscard]] std::string dominant_stall() const;
};

struct AttributionReport {
  std::vector<ThreadAttribution> threads;  // tid order
  std::size_t workers = 0;                 // threads labeled worker/<n>
  /// The stall category with the largest total across worker threads
  /// ("none" when no worker ever stalled) -- the headline diagnosis.
  std::string dominant_stall = "none";
  /// min over worker threads of attributed_share() (1.0 with no workers).
  double min_worker_attributed_share = 1.0;
};

/// Folds a parsed timeline into the per-thread decomposition.
[[nodiscard]] AttributionReport attribute_timeline(
    const std::vector<ParsedTimelineThread>& threads);

/// Human-readable per-worker table plus the headline diagnosis.
[[nodiscard]] std::string attribution_text(const AttributionReport& report);

/// One tagged span pulled out of a timeline for a request-centric view:
/// the thread it ran on plus the raw interval.
struct RequestSpanRow {
  std::uint32_t tid = 0;
  std::string label;
  std::string name;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
};

/// Every span tagged with request id `tag`, across all threads, sorted
/// by begin time.  Empty when the timeline holds no such spans (id never
/// served, or the ring already overwrote them).
[[nodiscard]] std::vector<RequestSpanRow> spans_for_request(
    const std::vector<ParsedTimelineThread>& threads, std::uint64_t tag);

/// Wall extents per request id, slowest first -- "which requests should
/// I decompose?".  `limit` caps the result (0 = all).
struct RequestExtent {
  std::uint64_t tag = 0;
  std::uint64_t begin_ns = 0;  // min begin over the request's spans
  std::uint64_t end_ns = 0;    // max end
  std::uint64_t spans = 0;
  [[nodiscard]] std::uint64_t wall_ns() const noexcept {
    return end_ns > begin_ns ? end_ns - begin_ns : 0;
  }
};
[[nodiscard]] std::vector<RequestExtent> slowest_requests(
    const std::vector<ParsedTimelineThread>& threads, std::size_t limit);

/// Human-readable single-request decomposition: one row per span in
/// begin order (offset from the request's first span), with the stage
/// names the service emits (service.admission, service.queue_wait,
/// service.plan, ...).
[[nodiscard]] std::string request_breakdown_text(
    const std::vector<RequestSpanRow>& rows, std::uint64_t tag);

/// `meshbcast.perf_report` v1 JSON.  When `metrics` is non-null the
/// report embeds the contention histograms' count/sum/percentiles
/// (scenario.queue_* / scenario.emit_stall_ms / store.mem.lock_wait_ms)
/// so one artifact carries both views.
void write_attribution_json(std::ostream& out,
                            const AttributionReport& report,
                            const MetricsSnapshot* metrics = nullptr);

}  // namespace wsn
