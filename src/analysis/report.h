#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "analysis/sweep.h"
#include "common/table.h"

/// Builders for the paper's evaluation tables (one bench binary per table
/// calls into these, so every number is produced the same way everywhere).
///
/// Every builder prints the paper's published value next to ours, because
/// the goal is comparison, not just regeneration.
namespace wsn {

/// Published values from the paper, used in the side-by-side columns and in
/// the integration tests' tolerance checks.
struct PaperRow {
  std::size_t tx;
  std::size_t rx;
  double power;
};
/// Paper Table 2/3/4 rows by family; aborts on unknown family.
[[nodiscard]] PaperRow paper_ideal_row(std::string_view family);
[[nodiscard]] PaperRow paper_best_row(std::string_view family);
[[nodiscard]] PaperRow paper_worst_row(std::string_view family);
/// Paper Table 5 maximum delay (ideal == protocol in the paper).
[[nodiscard]] Slot paper_max_delay(std::string_view family);

/// Runs the full 512-source sweep for one paper topology (32×16 or 8×8×8).
[[nodiscard]] SweepResult run_paper_sweep(std::string_view family,
                                          std::size_t workers = 0);

/// Table 1: optimal ETR per topology, analytic and measured (share of
/// relay transmissions achieving the optimal fresh-delivery count on a
/// center-source broadcast).
[[nodiscard]] AsciiTable build_table1();

/// Table 2: the ideal case, ours vs paper.
[[nodiscard]] AsciiTable build_table2();

/// Tables 3 / 4: best / worst case of the protocols over the sweep.
[[nodiscard]] AsciiTable build_table3();
[[nodiscard]] AsciiTable build_table4();

/// Table 5: maximum delay, ideal (graph eccentricity) vs our protocols vs
/// the paper's published column.
[[nodiscard]] AsciiTable build_table5();

}  // namespace wsn
