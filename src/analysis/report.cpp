#include "analysis/report.h"

#include "common/assert.h"
#include "common/string_util.h"
#include "protocol/etr.h"
#include "protocol/ideal_model.h"
#include "protocol/registry.h"
#include "topology/factory.h"
#include "topology/graph_algos.h"

namespace wsn {

namespace {

struct PaperTables {
  PaperRow ideal;
  PaperRow best;
  PaperRow worst;
  Slot max_delay;
};

/// Tables 2-5 of the paper, verbatim.
const PaperTables& paper_tables(std::string_view family) {
  static const PaperTables k2d3{{255, 765, 2.61e-2},
                                {301, 798, 2.81e-2},
                                {308, 816, 2.88e-2},
                                46};
  static const PaperTables k2d4{{170, 680, 2.18e-2},
                                {208, 714, 2.36e-2},
                                {223, 778, 2.56e-2},
                                45};
  static const PaperTables k2d8{{102, 816, 2.35e-2},
                                {143, 895, 2.66e-2},
                                {147, 924, 2.74e-2},
                                31};
  static const PaperTables k3d6{{124, 744, 2.22e-2},
                                {167, 815, 2.51e-2},
                                {187, 923, 2.84e-2},
                                20};
  if (family == "2D-3") return k2d3;
  if (family == "2D-4") return k2d4;
  if (family == "2D-8") return k2d8;
  if (family == "3D-6") return k3d6;
  WSN_EXPECTS(false && "unknown topology family");
  return k2d4;
}

IdealCase paper_ideal(std::string_view family) {
  if (family == "3D-6") {
    return ideal_case(family, PaperConfig::kMesh3d, PaperConfig::kMesh3d,
                      PaperConfig::kMesh3d, PaperConfig::kSpacing,
                      PaperConfig::kPacketBits);
  }
  return ideal_case(family, PaperConfig::kMesh2dM, PaperConfig::kMesh2dN, 1,
                    PaperConfig::kSpacing, PaperConfig::kPacketBits);
}

}  // namespace

PaperRow paper_ideal_row(std::string_view family) {
  return paper_tables(family).ideal;
}
PaperRow paper_best_row(std::string_view family) {
  return paper_tables(family).best;
}
PaperRow paper_worst_row(std::string_view family) {
  return paper_tables(family).worst;
}
Slot paper_max_delay(std::string_view family) {
  return paper_tables(family).max_delay;
}

SweepResult run_paper_sweep(std::string_view family, std::size_t workers) {
  const auto topo = make_paper_topology(family);
  SimOptions options;
  options.packet_bits = PaperConfig::kPacketBits;
  return sweep_all_sources(*topo, options, workers);
}

AsciiTable build_table1() {
  AsciiTable table({"Topology", "Optimal ETR", "(value)",
                    "measured share of relays at optimum"});
  table.set_title("Table 1: optimal ETRs of the four topologies");
  for (const std::string& family : regular_families()) {
    const auto topo = make_paper_topology(family);
    const OptimalEtr etr = optimal_etr(family);

    // Measure on a broadcast from the most central node.
    const NodeId center = graph_center(*topo);
    const RelayPlan plan = paper_plan(*topo, center);
    const BroadcastOutcome outcome = simulate_broadcast(*topo, plan);
    const EtrSummary summary = summarize_etr(
        *topo, outcome, static_cast<std::size_t>(etr.fresh), center);

    table.add_row({family,
                   std::to_string(etr.fresh) + "/" +
                       std::to_string(etr.neighbors),
                   fixed(etr.value(), 3),
                   fixed(100.0 * summary.optimal_share(), 1) + "%"});
  }
  return table;
}

AsciiTable build_table2() {
  AsciiTable table({"Topology", "Tx", "Rx", "Power(J)", "paper Tx",
                    "paper Rx", "paper Power(J)"});
  table.set_title(
      "Table 2: the performance of the ideal case (512 nodes, k=512b, "
      "d=0.5m)");
  for (const std::string& family : regular_families()) {
    const IdealCase ideal = paper_ideal(family);
    const PaperRow paper = paper_ideal_row(family);
    table.add_row({family, std::to_string(ideal.tx),
                   std::to_string(ideal.rx), sci(ideal.power),
                   std::to_string(paper.tx), std::to_string(paper.rx),
                   sci(paper.power)});
  }
  return table;
}

namespace {

AsciiTable build_envelope_table(bool worst) {
  AsciiTable table({"Topology", "source", "Tx", "Rx", "Power(J)", "paper Tx",
                    "paper Rx", "paper Power(J)"});
  table.set_title(worst
                      ? "Table 4: our broadcasting protocols (worst case)"
                      : "Table 3: our broadcasting protocols (best case)");
  for (const std::string& family : regular_families()) {
    const SweepResult sweep = run_paper_sweep(family);
    WSN_ASSERT(sweep.all_fully_reached());
    const SourceResult& row = worst ? sweep.worst() : sweep.best();
    const PaperRow paper = worst ? paper_worst_row(family)
                                 : paper_best_row(family);
    table.add_row({family, std::to_string(row.source),
                   std::to_string(row.stats.tx), std::to_string(row.stats.rx),
                   sci(row.stats.total_energy()), std::to_string(paper.tx),
                   std::to_string(paper.rx), sci(paper.power)});
  }
  return table;
}

}  // namespace

AsciiTable build_table3() { return build_envelope_table(/*worst=*/false); }
AsciiTable build_table4() { return build_envelope_table(/*worst=*/true); }

AsciiTable build_table5() {
  AsciiTable table({"Topology", "ideal (diameter)", "our protocols",
                    "paper (both)"});
  table.set_title("Table 5: maximum delay times (slots)");
  for (const std::string& family : regular_families()) {
    const auto topo = make_paper_topology(family);
    const SweepResult sweep = run_paper_sweep(family);
    table.add_row({family, std::to_string(diameter(*topo)),
                   std::to_string(sweep.max_delay()),
                   std::to_string(paper_max_delay(family))});
  }
  return table;
}

}  // namespace wsn
