#include "analysis/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

namespace wsn {

namespace {

/// One result row: its key and every numeric member, in document order.
struct EntryRow {
  std::string key;
  std::vector<std::pair<std::string, double>> metrics;
};

bool is_bench_schema(const JsonValue& doc, std::string& schema) {
  schema = doc.string_or("schema", "");
  return schema == "meshbcast.bench" || schema == "meshbcast.bench.scenario";
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

int metric_direction(std::string_view name) {
  // Aggregated variants keep their base direction: cold_jobs_per_sec_min
  // is still a throughput, queue_wait_ms_mean still a latency.
  if (name.find("per_sec") != std::string_view::npos ||
      ends_with(name, "rate")) {
    return 1;
  }
  if (name.find("_ms") != std::string_view::npos ||
      name.find("_ns") != std::string_view::npos) {
    return -1;
  }
  return 0;
}

/// Same keying as the bench gate: `name`, else `workers=N`, repeats
/// suffixed `#2`, `#3`, ... so both sides pair up positionally per key.
std::vector<EntryRow> collect_rows(const JsonValue& doc) {
  std::vector<EntryRow> out;
  std::map<std::string, std::size_t> key_counts;
  const JsonValue* results = doc.find("results");
  if (results == nullptr || !results->is_array()) return out;
  for (const JsonValue& row : results->as_array()) {
    if (!row.is_object()) continue;
    EntryRow entry;
    if (const JsonValue* name = row.find("name");
        name != nullptr && name->is_string()) {
      entry.key = name->as_string();
    } else if (const JsonValue* workers = row.find("workers")) {
      std::uint64_t w = 0;
      if (workers->to_u64(w)) entry.key = "workers=" + std::to_string(w);
    }
    if (entry.key.empty()) continue;
    const std::size_t occurrence = ++key_counts[entry.key];
    if (occurrence > 1) {
      entry.key.push_back('#');
      entry.key.append(std::to_string(occurrence));
    }
    for (const auto& [member, value] : row.as_object()) {
      if (value.is_number()) {
        entry.metrics.emplace_back(member, value.as_number());
      }
    }
    out.push_back(std::move(entry));
  }
  return out;
}

const EntryRow* find_row(const std::vector<EntryRow>& rows,
                         const std::string& key) {
  for (const EntryRow& r : rows) {
    if (r.key == key) return &r;
  }
  return nullptr;
}

const double* find_metric(const EntryRow& row, const std::string& name) {
  for (const auto& [key, value] : row.metrics) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::string verdict_for(double a, double b, int direction,
                        double tolerance) {
  if (a == b) return "equal";
  if (direction == 0) return "changed";
  if (a == 0.0) {
    return (b > 0.0) == (direction > 0) ? "improved" : "regressed";
  }
  const double ratio = b / a;
  if (std::fabs(ratio - 1.0) <= tolerance) return "equal";
  const bool better = direction > 0 ? ratio > 1.0 : ratio < 1.0;
  return better ? "improved" : "regressed";
}

}  // namespace

DiffReport diff_bench_docs(const JsonValue& a, const JsonValue& b,
                           const DiffOptions& options) {
  DiffReport report;
  std::string schema_a;
  std::string schema_b;
  if (!is_bench_schema(a, schema_a)) {
    report.notes.push_back("a: unknown schema \"" + schema_a + "\"; skipped");
    return report;
  }
  if (!is_bench_schema(b, schema_b)) {
    report.notes.push_back("b: unknown schema \"" + schema_b + "\"; skipped");
    return report;
  }
  if (schema_a != schema_b) {
    report.notes.push_back("schema mismatch: " + schema_a + " vs " +
                           schema_b + "; skipped");
    return report;
  }
  report.bench_a = a.string_or("bench", "");
  report.bench_b = b.string_or("bench", "");

  const std::vector<EntryRow> rows_a = collect_rows(a);
  const std::vector<EntryRow> rows_b = collect_rows(b);

  for (const EntryRow& row_a : rows_a) {
    const EntryRow* row_b = find_row(rows_b, row_a.key);
    if (row_b == nullptr) {
      DiffMetric m;
      m.entry = row_a.key;
      m.metric = "(entry)";
      m.verdict = "only-a";
      report.metrics.push_back(std::move(m));
      continue;
    }
    for (const auto& [name, value_a] : row_a.metrics) {
      DiffMetric m;
      m.entry = row_a.key;
      m.metric = name;
      m.a = value_a;
      m.direction = metric_direction(name);
      const double* value_b = find_metric(*row_b, name);
      if (value_b == nullptr) {
        m.verdict = "only-a";
      } else {
        m.b = *value_b;
        m.ratio = value_a != 0.0 ? *value_b / value_a : 0.0;
        m.verdict = verdict_for(value_a, *value_b, m.direction,
                                options.tolerance);
      }
      report.metrics.push_back(std::move(m));
    }
    for (const auto& [name, value_b] : row_b->metrics) {
      if (find_metric(row_a, name) != nullptr) continue;
      DiffMetric m;
      m.entry = row_a.key;
      m.metric = name;
      m.b = value_b;
      m.direction = metric_direction(name);
      m.verdict = "only-b";
      report.metrics.push_back(std::move(m));
    }
  }
  for (const EntryRow& row_b : rows_b) {
    if (find_row(rows_a, row_b.key) != nullptr) continue;
    DiffMetric m;
    m.entry = row_b.key;
    m.metric = "(entry)";
    m.verdict = "only-b";
    report.metrics.push_back(std::move(m));
  }
  return report;
}

DiffReport diff_bench_files(const std::string& path_a,
                            const std::string& path_b,
                            const DiffOptions& options) {
  DiffReport report;
  const auto read_doc = [&report](const std::string& path, JsonValue& doc,
                                  std::string_view role) {
    if (!std::filesystem::exists(path)) {
      report.notes.push_back(std::string(role) + " " + path +
                             " does not exist");
      return false;
    }
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!parse_json(buffer.str(), doc, &error)) {
      report.notes.push_back(std::string(role) + " " + path +
                             " unparseable: " + error);
      return false;
    }
    return true;
  };

  JsonValue a;
  JsonValue b;
  const bool ok_a = read_doc(path_a, a, "a");
  const bool ok_b = read_doc(path_b, b, "b");
  if (!ok_a || !ok_b) return report;
  DiffReport diffed = diff_bench_docs(a, b, options);
  diffed.notes.insert(diffed.notes.begin(), report.notes.begin(),
                      report.notes.end());
  return diffed;
}

void write_diff_json(std::ostream& out, const DiffReport& report,
                     const DiffOptions& options) {
  JsonWriter w;
  w.begin_object()
      .member("schema", "meshbcast.bench.diff")
      .member("version", std::uint64_t{1})
      .member("bench_a", report.bench_a)
      .member("bench_b", report.bench_b)
      .member("tolerance", options.tolerance)
      .member("improved", std::uint64_t{report.improved()})
      .member("regressed", std::uint64_t{report.regressed()});
  w.key("metrics").begin_array();
  for (const DiffMetric& m : report.metrics) {
    w.begin_object()
        .member("entry", m.entry)
        .member("metric", m.metric)
        .member("a", m.a)
        .member("b", m.b)
        .member("ratio", m.ratio)
        .member("direction", std::int64_t{m.direction})
        .member("verdict", m.verdict)
        .end_object();
  }
  w.end_array();
  w.key("notes").begin_array();
  for (const std::string& n : report.notes) w.value(n);
  w.end_array().end_object();
  out << std::move(w).str() << "\n";
}

std::string diff_text(const DiffReport& report) {
  std::ostringstream out;
  for (const DiffMetric& m : report.metrics) {
    char line[256];
    const char* arrow = m.direction > 0 ? "^" : m.direction < 0 ? "v" : "-";
    std::snprintf(line, sizeof line,
                  "%-28s %-24s %12.3f -> %12.3f  x%.3f %s %s\n",
                  m.entry.c_str(), m.metric.c_str(), m.a, m.b, m.ratio,
                  arrow, m.verdict.c_str());
    out << line;
  }
  for (const std::string& n : report.notes) out << "note: " << n << "\n";
  out << "diff: " << report.improved() << " improved, "
      << report.regressed() << " regressed, " << report.count("equal")
      << " equal, " << report.count("changed") << " changed ("
      << report.metrics.size() << " metrics)\n";
  return out.str();
}

}  // namespace wsn
