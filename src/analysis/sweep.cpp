#include "analysis/sweep.h"

#include <algorithm>

#include "common/assert.h"
#include "common/parallel.h"
#include "obs/profile.h"
#include "protocol/registry.h"

namespace wsn {

namespace {

const SourceResult& extreme_by_energy(const std::vector<SourceResult>& all,
                                      bool want_max) {
  WSN_EXPECTS(!all.empty());
  const SourceResult* pick = &all.front();
  for (const SourceResult& r : all) {
    const bool better = want_max
                            ? r.stats.total_energy() > pick->stats.total_energy()
                            : r.stats.total_energy() < pick->stats.total_energy();
    if (better) pick = &r;
  }
  return *pick;
}

}  // namespace

const SourceResult& SweepResult::best() const {
  return extreme_by_energy(per_source, /*want_max=*/false);
}

const SourceResult& SweepResult::worst() const {
  return extreme_by_energy(per_source, /*want_max=*/true);
}

Slot SweepResult::max_delay() const {
  Slot out = 0;
  for (const SourceResult& r : per_source) {
    out = std::max(out, r.stats.delay);
  }
  return out;
}

Joules SweepResult::mean_energy() const {
  if (per_source.empty()) return 0.0;
  Joules sum = 0.0;
  for (const SourceResult& r : per_source) sum += r.stats.total_energy();
  return sum / static_cast<double>(per_source.size());
}

bool SweepResult::all_fully_reached() const {
  return std::all_of(per_source.begin(), per_source.end(),
                     [](const SourceResult& r) {
                       return r.stats.fully_reached();
                     });
}

SweepResult sweep_all_sources(const Topology& topo, const SimOptions& options,
                              std::size_t workers, PlanStore* store) {
  // The per-source runs execute concurrently: an event sink (single-run
  // by contract) cannot absorb them, while shared metrics handles can.
  WSN_EXPECTS(options.observer == nullptr ||
              options.observer->events == nullptr);
  WSN_SPAN("sweep.all_sources");
  const std::size_t n = topo.num_nodes();
  SweepResult result;
  result.per_source.resize(n);
  // One Simulator per worker: every source a worker owns reuses the same
  // scratch, so the sweep allocates per-worker, not per-source.
  std::vector<Simulator> simulators(resolve_worker_count(n, workers));
  parallel_for_workers(
      0, n,
      [&](std::size_t worker, std::size_t src) {
        WSN_SPAN("sweep.source");
        const auto source = static_cast<NodeId>(src);
        if (store != nullptr) {
          // Simulate straight off the cached CSR plan -- a shared_ptr
          // borrow, not a deep copy of the offset vectors.
          const std::shared_ptr<const StoredPlan> stored =
              store->fetch_or_compile(
                  topo, source, "paper", options,
                  [&](ResolveReport& fresh) {
                    return paper_plan(topo, source, options, &fresh);
                  });
          const BroadcastOutcome outcome =
              simulators[worker].run(topo, stored->plan, options);
          result.per_source[src] = SourceResult{source, outcome.stats,
                                                stored->report.repairs};
          return;
        }
        ResolveReport report;
        const RelayPlan plan = paper_plan(topo, source, options, &report);
        const BroadcastOutcome outcome =
            simulators[worker].run(topo, plan, options);
        result.per_source[src] = SourceResult{source, outcome.stats,
                                              report.repairs};
      },
      workers);
  return result;
}

SweepResult sweep_all_sources_with(const Topology& topo,
                                   const PlanFactory& factory,
                                   const SimOptions& options,
                                   std::size_t workers) {
  WSN_EXPECTS(options.observer == nullptr ||
              options.observer->events == nullptr);
  WSN_SPAN("sweep.all_sources");
  const std::size_t n = topo.num_nodes();
  SweepResult result;
  result.per_source.resize(n);
  std::vector<Simulator> simulators(resolve_worker_count(n, workers));
  parallel_for_workers(
      0, n,
      [&](std::size_t worker, std::size_t src) {
        WSN_SPAN("sweep.source");
        const auto source = static_cast<NodeId>(src);
        const RelayPlan plan = factory(topo, source);
        const BroadcastOutcome outcome =
            simulators[worker].run(topo, plan, options);
        result.per_source[src] = SourceResult{source, outcome.stats, 0};
      },
      workers);
  return result;
}

}  // namespace wsn
