#include "analysis/energy_balance.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.h"
#include "common/parallel.h"
#include "protocol/registry.h"

namespace wsn {

EnergyBalance energy_balance(const std::vector<Joules>& energy) {
  WSN_EXPECTS(!energy.empty());
  const auto n = static_cast<double>(energy.size());

  EnergyBalance out;
  out.min = *std::min_element(energy.begin(), energy.end());
  const auto max_it = std::max_element(energy.begin(), energy.end());
  out.max = *max_it;
  out.hottest = static_cast<NodeId>(max_it - energy.begin());

  const Joules total = std::accumulate(energy.begin(), energy.end(), 0.0);
  out.mean = total / n;

  double variance = 0.0;
  for (Joules e : energy) {
    variance += (e - out.mean) * (e - out.mean);
  }
  out.stddev = std::sqrt(variance / n);
  out.peak_to_mean = out.mean > 0.0 ? out.max / out.mean : 0.0;

  // Gini via the sorted mean-difference form:
  //   G = (2 Σ_i i·x_(i) / (n Σ x)) - (n + 1)/n ,   i = 1..n ascending.
  if (total > 0.0) {
    std::vector<Joules> sorted = energy;
    std::sort(sorted.begin(), sorted.end());
    double weighted = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      weighted += static_cast<double>(i + 1) * sorted[i];
    }
    out.gini = 2.0 * weighted / (n * total) - (n + 1.0) / n;
  }
  return out;
}

std::vector<Joules> rotating_source_energy(const Topology& topo,
                                           const SimOptions& options) {
  SimOptions per_run = options;
  per_run.record_node_energy = true;
  per_run.battery = nullptr;  // accumulation handled here

  // One broadcast per source, energy vectors summed; sources are
  // independent runs, so fan out across cores and reduce.
  const auto partials = parallel_map<std::vector<Joules>>(
      topo.num_nodes(), [&](std::size_t src) {
        const RelayPlan plan =
            paper_plan(topo, static_cast<NodeId>(src), per_run);
        return simulate_broadcast(topo, plan, per_run).node_energy;
      });

  std::vector<Joules> total(topo.num_nodes(), 0.0);
  for (const auto& partial : partials) {
    for (std::size_t v = 0; v < total.size(); ++v) total[v] += partial[v];
  }
  return total;
}

}  // namespace wsn
