#pragma once

#include <functional>
#include <string>
#include <vector>

#include "protocol/resolver.h"
#include "sim/simulator.h"
#include "store/plan_store.h"
#include "topology/topology.h"

/// Source-position sweeps: the engine behind the paper's Tables 3-5.
///
/// The paper reports best-case and worst-case protocol performance over
/// source placement ("different source has different total number of
/// transmissions, ...; if the source is in the center it performs better,
/// in the corner it consumes more power and has a longer delay").  We run
/// one full broadcast per source position -- all of them -- in parallel
/// and fold the per-source stats into a best/worst envelope keyed on total
/// power, exactly as the paper's tables are.
namespace wsn {

struct SourceResult {
  NodeId source = kInvalidNode;
  BroadcastStats stats;
  std::size_t repairs = 0;
};

struct SweepResult {
  std::vector<SourceResult> per_source;  // indexed by source id

  /// The source minimizing / maximizing total energy (the paper's "best
  /// case" / "worst case" rows); ties broken by lower node id.
  [[nodiscard]] const SourceResult& best() const;
  [[nodiscard]] const SourceResult& worst() const;
  /// Maximum delay over all sources (Table 5's "maximum delay time").
  [[nodiscard]] Slot max_delay() const;
  /// Mean total energy across sources.
  [[nodiscard]] Joules mean_energy() const;
  /// True if every source reached every node.
  [[nodiscard]] bool all_fully_reached() const;
};

/// Plans broadcasts from every source with the family's paper protocol
/// (resolver included), simulates each, and collects the stats.
/// `workers = 0` uses all cores.  Each worker keeps one scratch-reusing
/// Simulator for its whole chunk of sources.  `store`, when non-null, is
/// the shared plan cache all workers compile through
/// (store/plan_store.h): a warm store turns the per-source compilation --
/// the sweep's dominant cost -- into a lookup, and the result is
/// byte-identical either way.
[[nodiscard]] SweepResult sweep_all_sources(const Topology& topo,
                                            const SimOptions& options = {},
                                            std::size_t workers = 0,
                                            PlanStore* store = nullptr);

/// Same sweep for an arbitrary plan factory (used for baselines and
/// ablations).  The factory must be safe to call concurrently.
using PlanFactory = std::function<RelayPlan(const Topology&, NodeId)>;
[[nodiscard]] SweepResult sweep_all_sources_with(const Topology& topo,
                                                 const PlanFactory& factory,
                                                 const SimOptions& options = {},
                                                 std::size_t workers = 0);

}  // namespace wsn
