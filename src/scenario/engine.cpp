#include "scenario/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "common/assert.h"
#include "common/bounded_queue.h"
#include "common/json.h"
#include "common/parallel.h"
#include "common/random.h"
#include "fault/adaptive.h"
#include "fault/link_estimator.h"
#include "fault/models.h"
#include "fault/recovery.h"
#include "obs/audit/auditor.h"
#include "obs/export.h"
#include "obs/observer.h"
#include "obs/profile.h"
#include "obs/sampler.h"
#include "obs/timeline.h"
#include "protocol/cds_broadcast.h"
#include "protocol/etr.h"
#include "protocol/etx_planner.h"
#include "protocol/flooding.h"
#include "protocol/gossip.h"
#include "protocol/ideal_model.h"
#include "protocol/registry.h"
#include "sim/simulator.h"

namespace wsn {

namespace {

constexpr std::string_view kResultsSchema = "meshbcast.scenario.results";
constexpr std::string_view kManifestSchema = "meshbcast.scenario.checkpoint";
constexpr int kSchemaVersion = 1;

std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

/// All doubles in records use shortest-round-trip %.17g: exact (the value
/// survives a parse bit-for-bit) and -- critically -- byte-stable, which
/// the cross-worker-count identity guarantee rides on.
std::string format_record_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

/// Stateless splitmix64 mix of (seed, salt): each job's trial seed and
/// each fault model's sub-seed are pure functions of the spec, never of
/// scheduling.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) noexcept {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ull * (salt + 1));
  return splitmix64(state);
}

/// The per-job fold the envelopes accumulate -- small enough to rebuild
/// from a parsed record line on resume, which is what keeps a resumed
/// run's summary identical to an uninterrupted one's.
struct RecordFold {
  std::string scenario;
  bool ok = false;
  NodeId source = kInvalidNode;
  Joules energy = 0.0;
  std::size_t tx = 0;
  std::size_t rx = 0;
  Slot delay = 0;
  bool reached_all = false;
  bool has_etr = false;
  double etr_share = 0.0;
};

void fold_into(ScenarioEnvelope& env, const RecordFold& fold) {
  env.jobs += 1;
  if (!fold.ok) {
    env.errors += 1;
    return;
  }
  env.energy_sum += fold.energy;
  // Strict comparisons keep the first (lowest job index) holder on energy
  // ties; folding happens in emission order, so the winner is stable.
  if (env.best_source == kInvalidNode || fold.energy < env.best_energy) {
    env.best_energy = fold.energy;
    env.best_source = fold.source;
    env.best_tx = fold.tx;
    env.best_rx = fold.rx;
  }
  if (env.worst_source == kInvalidNode || fold.energy > env.worst_energy) {
    env.worst_energy = fold.energy;
    env.worst_source = fold.source;
    env.worst_tx = fold.tx;
    env.worst_rx = fold.rx;
  }
  env.max_delay = std::max(env.max_delay, fold.delay);
  env.all_reached = env.all_reached && fold.reached_all;
  if (fold.has_etr) {
    env.etr_share_sum += fold.etr_share;
    env.etr_jobs += 1;
  }
}

/// Rebuilds a RecordFold from an already-emitted record line (resume
/// path).  Returns false on anything that does not look like one of our
/// records for job `expect_index` -- the caller treats that as the end of
/// the valid prefix.
bool parse_record_line(const std::string& line, std::size_t expect_index,
                       RecordFold& fold) {
  JsonValue doc;
  if (!parse_json(line, doc) || !doc.is_object()) return false;
  const JsonValue* job = doc.find("job");
  std::uint64_t index = 0;
  if (job == nullptr || !job->to_u64(index) || index != expect_index) {
    return false;
  }
  const JsonValue* scenario = doc.find("scenario");
  const JsonValue* status = doc.find("status");
  if (scenario == nullptr || !scenario->is_string() || status == nullptr ||
      !status->is_string()) {
    return false;
  }
  fold = RecordFold{};
  fold.scenario = scenario->as_string();
  if (status->as_string() == "error") return true;
  if (status->as_string() != "ok") return false;
  fold.ok = true;
  fold.source = static_cast<NodeId>(doc.number_or("source", 0));
  fold.energy = doc.number_or("energy", 0.0);
  fold.tx = static_cast<std::size_t>(doc.number_or("tx", 0));
  fold.rx = static_cast<std::size_t>(doc.number_or("rx", 0));
  fold.delay = static_cast<Slot>(doc.number_or("delay", 0));
  fold.reached_all =
      doc.number_or("reached", 0) == doc.number_or("nodes", -1);
  if (const JsonValue* share = doc.find("etr_share")) {
    fold.has_etr = true;
    fold.etr_share = share->as_number();
  }
  return true;
}

struct ExecResult {
  std::string line;  // the record, no trailing newline
  RecordFold fold;
};

/// Runs one job to its record.  Pure in the job (given the shared,
/// deterministic plan store): no clocks, no worker identity, no queue
/// state ever reaches the record text.  With `audit` set, the simulated
/// run is observed into a per-job event sink and audited in-stream; the
/// verdict is deterministic too, so the byte-identity guarantee holds at
/// any worker count as long as both runs use the same flag.
ExecResult execute_job(const JobMatrix& matrix, const ScenarioJob& job,
                       Simulator& sim, PlanStore* store, bool audit,
                       std::atomic<const char*>* stage = nullptr) {
  const ScenarioEntry& entry = *job.entry;
  ExecResult result;
  result.fold.scenario = entry.name;
  // Stage breadcrumbs for the watchdog: which phase a timed-out job was in.
  const auto enter = [stage](const char* phase) {
    if (stage != nullptr) stage->store(phase, std::memory_order_release);
  };

  std::ostringstream line;
  line << "{\"job\":" << job.index << ",\"scenario\":\""
       << json_escape(entry.name) << "\"";

  if (!job.error.empty()) {
    line << ",\"status\":\"error\",\"error\":\"" << json_escape(job.error)
         << "\"}";
    result.line = line.str();
    return result;
  }

  const Topology& topo = matrix.topology_of(job);
  const std::uint64_t trial_seed = mix_seed(job.seed, job.rep);

  // Plan-construction options: fault-free and observer-free on purpose --
  // plans are compiled for the ideal medium (the resilience harness's
  // convention) and the fault model only bites at simulation time.  This
  // also keeps the request plan-store-eligible.
  SimOptions plan_options;
  plan_options.packet_bits = entry.packet_bits;

  std::size_t repairs = 0;
  std::size_t unrepaired = 0;
  std::size_t planned_tx = 0;  // base plan's scheduled Tx, post-recovery
  bool arq_ran = false;
  AdaptiveArqReport arq_report;

  BroadcastOutcome outcome;
  EtrSummary etr;
  bool have_etr = false;
  bool have_audit = false;
  std::size_t audit_checks = 0;
  std::size_t audit_violations = 0;
  std::string audit_failed;

  if (job.protocol == "ideal") {
    // Analytic comparator (Table 2): no simulation, no faults, no delay.
    const IdealCase ideal =
        ideal_case(entry.family, entry.m, entry.n, entry.l, entry.spacing,
                   entry.packet_bits);
    outcome.stats.num_nodes = topo.num_nodes();
    outcome.stats.reached = topo.num_nodes();
    outcome.stats.tx = ideal.tx;
    outcome.stats.rx = ideal.rx;
    outcome.stats.tx_energy = ideal.power;
    outcome.stats.rx_energy = 0.0;
    if (entry.outputs.etr) {
      // By construction every ideal transmission is at the optimum.
      etr.transmissions = ideal.tx;
      etr.mean = optimal_etr(entry.family).value();
      etr.max = etr.mean;
      etr.at_optimum = ideal.tx;
      have_etr = true;
    }
  } else {
    // --- plan ---------------------------------------------------------
    enter("plan");
    RelayPlan plan;
    std::vector<double> etx_quality;  // etx protocol: learned CSR span
    const FlatRelayPlan* flat = nullptr;  // store fast path, kNone only
    std::shared_ptr<const StoredPlan> stored;
    const bool cacheable =
        job.protocol == "paper" || job.protocol == "cds";
    if (cacheable && store != nullptr) {
      stored = store->fetch_or_compile(
          topo, job.source, job.protocol, plan_options,
          [&](ResolveReport& report) {
            return job.protocol == "paper"
                       ? paper_plan(topo, job.source, plan_options, &report)
                       : CdsBroadcast{}.plan(topo, job.source);
          });
      repairs = stored->report.repairs;
      unrepaired = stored->report.unrepaired;
      if (job.recovery == RecoveryPolicy::kNone) {
        flat = &stored->plan;
      } else {
        plan = stored->plan.to_relay_plan();
      }
    } else if (job.protocol == "paper") {
      ResolveReport report;
      plan = paper_plan(topo, job.source, plan_options, &report);
      repairs = report.repairs;
      unrepaired = report.unrepaired;
    } else if (job.protocol == "cds") {
      plan = CdsBroadcast{}.plan(topo, job.source);
    } else if (job.protocol == "etx") {
      // Learn the channel from a dedicated probe stream.  The probe model
      // gets its own salt -- NOT the run channel's -- so the estimator
      // samples the channel's statistics, never the exact counter-mode
      // draws the simulation below will replay (no clairvoyant plans).
      // Never cached: the plan depends on the learned quality, which is
      // not part of the plan store's fingerprint.
      if (job.fault.kind == ScenarioFault::Kind::kIid) {
        IidLossModel probe(job.fault.loss, mix_seed(trial_seed, 0xe57ull));
        etx_quality = estimate_link_quality(topo, probe);
      } else if (job.fault.kind == ScenarioFault::Kind::kGilbert) {
        GilbertElliottModel probe = GilbertElliottModel::from_mean_loss(
            job.fault.loss, job.fault.burst, mix_seed(trial_seed, 0xe57ull));
        etx_quality = estimate_link_quality(topo, probe);
      }
      ResolveReport report;
      plan = etx_plan(topo, job.source, etx_quality, plan_options, &report);
      repairs = report.repairs;
      unrepaired = report.unrepaired;
    } else if (job.protocol == "flooding") {
      plan = Flooding(entry.jitter, trial_seed).plan(topo, job.source);
    } else {
      WSN_ASSERT(job.protocol == "gossip");
      plan = Gossip(entry.gossip_p, entry.jitter, trial_seed)
                 .plan(topo, job.source);
    }
    // Adaptive recovery does not rewrite the plan -- it reacts at run
    // time (fault/adaptive.h), so only the static policies rewrite here.
    if (job.recovery != RecoveryPolicy::kNone &&
        job.recovery != RecoveryPolicy::kAdaptive) {
      plan = apply_recovery(topo, std::move(plan), job.recovery,
                            entry.repeat_k);
    }
    planned_tx =
        flat != nullptr ? flat->total_offsets() : plan.planned_tx();

    // --- faults -------------------------------------------------------
    // One model instance per job (they are stateful); sub-seeds are
    // derived with distinct salts so loss and crash draws never alias.
    std::vector<std::unique_ptr<FaultModel>> owned;
    if (job.fault.kind == ScenarioFault::Kind::kIid) {
      owned.push_back(std::make_unique<IidLossModel>(
          job.fault.loss, mix_seed(trial_seed, 0x10551ull)));
    } else if (job.fault.kind == ScenarioFault::Kind::kGilbert) {
      owned.push_back(
          std::make_unique<GilbertElliottModel>(GilbertElliottModel::from_mean_loss(
              job.fault.loss, job.fault.burst,
              mix_seed(trial_seed, 0x91b3ull))));
    }
    if (job.fault.crash_prob > 0.0) {
      owned.push_back(std::make_unique<CrashScheduleModel>(
          CrashScheduleModel::sample(topo.num_nodes(), job.fault.crash_prob,
                                     job.fault.crash_horizon,
                                     job.fault.crash_outage,
                                     mix_seed(trial_seed, 0xc4a5ull))));
    }
    std::vector<FaultModel*> parts;
    parts.reserve(owned.size());
    for (auto& model : owned) parts.push_back(model.get());
    std::unique_ptr<CompositeFaultModel> composite;
    FaultModel* faults = nullptr;
    if (parts.size() == 1) {
      faults = parts.front();
    } else if (parts.size() > 1) {
      composite = std::make_unique<CompositeFaultModel>(parts);
      faults = composite.get();
    }

    // --- simulate -----------------------------------------------------
    enter("simulate");
    SimOptions run_options = plan_options;
    run_options.faults = faults;
    if (entry.deadline_slots > 0) run_options.max_slots = entry.deadline_slots;
    EventSink sink;
    Observer observer(&sink);
    const bool tracing = !entry.outputs.trace_dir.empty();
    if (tracing || audit) run_options.observer = &observer;

    if (job.recovery == RecoveryPolicy::kAdaptive) {
      // NACK/backoff ARQ: probe rounds grow the plan, the final replay
      // runs under the caller's observer so traces and audits see the
      // augmented timeline.  Quality (when the etx protocol learned it)
      // steers helper choice.
      AdaptiveArqConfig arq_config;
      arq_config.retry_budget = entry.arq_budget;
      arq_config.max_rounds = entry.arq_rounds;
      outcome = run_adaptive_arq(topo, plan, run_options, arq_config,
                                 &arq_report, etx_quality);
      arq_ran = true;
    } else {
      outcome = flat != nullptr ? sim.run(topo, *flat, run_options)
                                : sim.run(topo, plan, run_options);
    }

    if (audit) {
      enter("audit");
      AuditConfig audit_config;
      audit_config.packet_bits = entry.packet_bits;
      audit_config.source = job.source;
      audit_config.stats = &outcome.stats;
      // Coverage loss under injected faults is the measurement, not a
      // defect; under the perfect medium it is a violation.
      audit_config.expect_full_coverage = faults == nullptr;
      // Lossy-mode checks (9-11).  The delivery-ratio check only makes
      // sense for a pure link model: composed crashes skew the attempt
      // accounting, so it stays off for those jobs.
      if (job.fault.kind != ScenarioFault::Kind::kNone &&
          job.fault.crash_prob == 0.0) {
        audit_config.mean_link_delivery = 1.0 - job.fault.loss;
        audit_config.delivery_burst =
            job.fault.kind == ScenarioFault::Kind::kGilbert ? job.fault.burst
                                                            : 1.0;
      }
      audit_config.planned_tx = planned_tx;
      if (arq_ran) {
        audit_config.arq = true;
        audit_config.retries = arq_report.retries;
        audit_config.retry_budget = entry.arq_budget;
        audit_config.budget_exhausted = arq_report.budget_exhausted;
        audit_config.arq_rounds = arq_report.rounds;
        audit_config.arq_max_rounds = entry.arq_rounds;
      }
      const AuditReport report = audit_sink(topo, sink, audit_config);
      have_audit = true;
      audit_checks = report.checks_run;
      audit_violations = report.violations.size();
      // Failed check names, deduped in enum order -- a stable, compact
      // rendition for the record.
      for (std::size_t c = 0; c < kAuditCheckCount; ++c) {
        const auto check = static_cast<AuditCheck>(c);
        if (!report.violated(check)) continue;
        if (!audit_failed.empty()) audit_failed += ",";
        audit_failed += to_string(check);
      }
    }
    if (tracing) {
      std::error_code ec;  // best-effort: a failed trace never fails a job
      std::filesystem::create_directories(entry.outputs.trace_dir, ec);
      const std::filesystem::path path =
          std::filesystem::path(entry.outputs.trace_dir) /
          ("job_" + std::to_string(job.index) + ".jsonl");
      std::ofstream trace(path, std::ios::trunc);
      if (trace) write_events_jsonl(trace, sink);
    }
    if (entry.outputs.etr) {
      etr = summarize_etr(topo, outcome,
                          static_cast<std::size_t>(
                              optimal_etr(entry.family).fresh),
                          job.source);
      have_etr = true;
    }
  }

  // --- record ---------------------------------------------------------
  const BroadcastStats& stats = outcome.stats;
  line << ",\"family\":\"" << json_escape(entry.family) << "\",\"dims\":["
       << entry.m << "," << entry.n << "," << entry.l << "]"
       << ",\"source\":" << job.source << ",\"protocol\":\"" << job.protocol
       << "\",\"recovery\":\"" << to_string(job.recovery) << "\",\"fault\":\""
       << json_escape(job.fault.label()) << "\",\"seed\":" << job.seed
       << ",\"rep\":" << job.rep << ",\"status\":\"ok\""
       << ",\"nodes\":" << stats.num_nodes << ",\"reached\":" << stats.reached
       << ",\"tx\":" << stats.tx << ",\"rx\":" << stats.rx
       << ",\"dup\":" << stats.duplicates << ",\"coll\":" << stats.collisions
       << ",\"fade\":" << stats.lost_to_fading
       << ",\"crash\":" << stats.lost_to_crash << ",\"delay\":" << stats.delay
       << ",\"energy\":" << format_record_double(stats.total_energy())
       << ",\"repairs\":" << repairs;
  if (unrepaired > 0) line << ",\"unrepaired\":" << unrepaired;
  if (arq_ran) {
    line << ",\"retries\":" << arq_report.retries
         << ",\"arq_rounds\":" << arq_report.rounds;
    if (arq_report.budget_exhausted) line << ",\"arq_exhausted\":true";
  }
  if (have_etr) {
    line << ",\"etr_mean\":" << format_record_double(etr.mean)
         << ",\"etr_share\":" << format_record_double(etr.optimal_share());
  }
  if (have_audit) {
    line << ",\"audit_checks\":" << audit_checks
         << ",\"audit_violations\":" << audit_violations;
    if (!audit_failed.empty()) {
      line << ",\"audit_failed\":\"" << json_escape(audit_failed) << "\"";
    }
  }
  line << "}";

  result.line = line.str();
  result.fold.ok = true;
  result.fold.source = job.source;
  result.fold.energy = stats.total_energy();
  result.fold.tx = stats.tx;
  result.fold.rx = stats.rx;
  result.fold.delay = stats.delay;
  result.fold.reached_all = stats.fully_reached();
  result.fold.has_etr = have_etr;
  result.fold.etr_share = have_etr ? etr.optimal_share() : 0.0;
  return result;
}

}  // namespace

/// Run-scoped shared state: queue, collector, envelope folds.
struct ScenarioEngine::Impl {
  BoundedQueue<std::pair<std::size_t,
                         std::chrono::steady_clock::time_point>>
      queue;
  std::mutex collector_mutex;
  std::map<std::size_t, ExecResult> pending;  // out-of-order completions
  std::size_t next_to_emit = 0;
  std::ofstream out;
  std::string manifest_path;
  std::string manifest_prefix;  // everything before the emitted count
  std::size_t jobs_total = 0;
  std::size_t emitted = 0;
  std::size_t errors = 0;
  std::vector<ScenarioEnvelope>* envelopes = nullptr;
  double queue_wait_ms_sum = 0.0;
  std::size_t queue_wait_samples = 0;
  Counter* completed_metric = nullptr;
  Counter* failed_metric = nullptr;
  Counter* timeout_metric = nullptr;
  Histogram* wait_metric = nullptr;
  Histogram* push_wait_metric = nullptr;
  Histogram* pop_wait_metric = nullptr;
  Histogram* emit_stall_metric = nullptr;
  Gauge* queue_depth_metric = nullptr;
  Gauge* busy_metric = nullptr;
  std::atomic<std::size_t> busy{0};
  /// Jobs already resolved into a record (normally or by the watchdog).
  /// First resolution wins: a stalled worker's late result -- or a second
  /// watchdog expiry of the same slot -- is discarded here.
  std::vector<char> resolved;

  explicit Impl(std::size_t capacity) : queue(capacity) {}
};

/// One per worker: which job the worker is executing, since when, and in
/// which stage -- everything the watchdog needs, all lock-free.  `index`
/// is stored last (release) so a watchdog that sees it also sees the
/// matching start time and stage.
struct WorkerSlot {
  static constexpr std::size_t kIdle = static_cast<std::size_t>(-1);
  std::atomic<std::size_t> index{kIdle};
  std::atomic<std::int64_t> start_ms{0};
  std::atomic<const char*> stage{nullptr};
};

namespace {
std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ScenarioEngine::ScenarioEngine(const JobMatrix& matrix, EngineConfig config)
    : matrix_(matrix), config_(std::move(config)) {}

std::string ScenarioEngine::header_line() const {
  std::ostringstream line;
  line << "{\"schema\":\"" << kResultsSchema
       << "\",\"version\":" << kSchemaVersion << ",\"name\":\""
       << json_escape(matrix_.spec.name) << "\",\"fingerprint\":\""
       << fingerprint_hex(matrix_.fingerprint)
       << "\",\"jobs\":" << matrix_.jobs.size() << "}";
  return line.str();
}

void ScenarioEngine::request_cancel() {
  stop_.store(true, std::memory_order_release);
  const std::lock_guard<std::mutex> lock(run_mutex_);
  if (active_ != nullptr) active_->queue.cancel();
}

RunSummary ScenarioEngine::run(const std::string& results_path) {
  RunSummary summary;
  summary.jobs_total = matrix_.jobs.size();
  stop_.store(false, std::memory_order_release);

  // Envelope per spec entry, in entry order; scenario-name keyed fold.
  std::vector<ScenarioEnvelope> envelopes;
  envelopes.reserve(matrix_.spec.entries.size());
  for (const ScenarioEntry& entry : matrix_.spec.entries) {
    const bool seen =
        std::any_of(envelopes.begin(), envelopes.end(),
                    [&](const ScenarioEnvelope& e) {
                      return e.scenario == entry.name;
                    });
    if (!seen) {
      ScenarioEnvelope env;
      env.scenario = entry.name;
      envelopes.push_back(std::move(env));
    }
  }
  const auto envelope_for = [&](const std::string& name) -> ScenarioEnvelope* {
    for (ScenarioEnvelope& env : envelopes) {
      if (env.scenario == name) return &env;
    }
    return nullptr;
  };

  const std::string header = header_line();

  // ---- resume scan ----------------------------------------------------
  // The results file is its own checkpoint: the longest valid prefix of
  // records counts as done, everything from the first malformed byte on
  // is redone.  The manifest is never consulted -- it can lie (torn
  // write), the results file cannot (we truncate it to the valid prefix).
  std::size_t completed = 0;
  bool append = false;
  if (config_.resume && std::filesystem::exists(results_path)) {
    std::ifstream in(results_path, std::ios::binary);
    std::string text;
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    }
    const std::size_t header_end = text.find('\n');
    bool header_ok = false;
    if (header_end != std::string::npos) {
      JsonValue doc;
      if (parse_json(text.substr(0, header_end), doc) && doc.is_object() &&
          doc.string_or("schema", "") == kResultsSchema) {
        const std::string found = doc.string_or("fingerprint", "");
        if (found != fingerprint_hex(matrix_.fingerprint)) {
          summary.error =
              results_path +
              ": existing results were produced by a different scenario "
              "spec (fingerprint " +
              found + ", expected " + fingerprint_hex(matrix_.fingerprint) +
              "); refusing to mix runs";
          return summary;
        }
        header_ok = true;
      }
    }
    if (header_ok) {
      // Walk complete lines; stop at the first one that is truncated,
      // unparseable, or out of sequence.
      std::size_t offset = header_end + 1;
      while (completed < summary.jobs_total) {
        const std::size_t eol = text.find('\n', offset);
        if (eol == std::string::npos) break;  // torn final line: redo it
        RecordFold fold;
        if (!parse_record_line(text.substr(offset, eol - offset), completed,
                               fold)) {
          break;
        }
        if (ScenarioEnvelope* env = envelope_for(fold.scenario)) {
          fold_into(*env, fold);
        }
        if (!fold.ok) summary.errors += 1;
        offset = eol + 1;
        completed += 1;
      }
      std::error_code ec;
      std::filesystem::resize_file(results_path, offset, ec);
      if (ec) {
        summary.error = results_path + ": cannot truncate for resume: " +
                        ec.message();
        return summary;
      }
      append = true;
      summary.resumed = completed > 0;
      summary.jobs_skipped = completed;
    }
    // A missing/corrupt header falls through to a fresh start: the file
    // had nothing trustworthy in it.
  }

  // ---- open the stream ------------------------------------------------
  const std::size_t workers_cfg = config_.workers != 0
                                      ? config_.workers
                                      : default_worker_count();
  const std::size_t remaining = summary.jobs_total - completed;
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(workers_cfg, std::max<std::size_t>(
                                                         remaining, 1)));
  const std::size_t capacity =
      config_.queue_capacity != 0
          ? config_.queue_capacity
          : std::max<std::size_t>(2 * workers, 16);

  Impl impl(capacity);
  impl.resolved.assign(summary.jobs_total, 0);
  std::fill(impl.resolved.begin(),
            impl.resolved.begin() +
                static_cast<std::ptrdiff_t>(completed),
            static_cast<char>(1));
  impl.jobs_total = summary.jobs_total;
  impl.emitted = completed;
  impl.next_to_emit = completed;
  impl.errors = summary.errors;
  impl.envelopes = &envelopes;
  // Stream-only mode (empty path): no results file, no manifest sidecar.
  impl.manifest_path =
      results_path.empty() ? std::string() : results_path + ".manifest";
  {
    std::ostringstream prefix;
    prefix << "{\"schema\":\"" << kManifestSchema
           << "\",\"version\":" << kSchemaVersion << ",\"name\":\""
           << json_escape(matrix_.spec.name) << "\",\"fingerprint\":\""
           << fingerprint_hex(matrix_.fingerprint)
           << "\",\"jobs\":" << summary.jobs_total << ",\"emitted\":";
    impl.manifest_prefix = prefix.str();
  }
  if (config_.metrics != nullptr) {
    impl.completed_metric = &config_.metrics->counter("scenario.jobs_completed");
    impl.failed_metric = &config_.metrics->counter("scenario.jobs_failed");
    impl.timeout_metric = &config_.metrics->counter("scenario.jobs_timed_out");
    config_.metrics->counter("scenario.jobs_skipped").add(completed);
    impl.wait_metric = &config_.metrics->histogram(
        "scenario.queue_wait_ms",
        {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0});
    impl.push_wait_metric = &config_.metrics->histogram(
        "scenario.queue_push_wait_ms",
        {0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0});
    impl.pop_wait_metric = &config_.metrics->histogram(
        "scenario.queue_pop_wait_ms",
        {0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0});
    impl.emit_stall_metric = &config_.metrics->histogram(
        "scenario.emit_stall_ms",
        {0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0});
    impl.queue_depth_metric = &config_.metrics->gauge("scenario.queue_depth");
    impl.busy_metric = &config_.metrics->gauge("scenario.workers_busy");
  }

  // Contention hooks: the queue times its own blocking waits (clock reads
  // only when a wait actually happens) and reports the nanoseconds here,
  // outside its mutex.  Histograms fill only when metrics are bound; the
  // timeline records a wait span only when enabled (record_wait is one
  // relaxed load otherwise).  push waits run on the producer thread, pop
  // waits on workers -- the timeline attributes them to the right ring
  // automatically because rings are thread-local.
  {
    QueueWaitHooks hooks;
    hooks.on_push_wait = [&impl](std::uint64_t wait_ns) {
      if (impl.push_wait_metric != nullptr) {
        impl.push_wait_metric->observe(static_cast<double>(wait_ns) / 1e6);
      }
      Timeline::instance().record_wait("queue.push_wait", wait_ns);
    };
    hooks.on_pop_wait = [&impl](std::uint64_t wait_ns) {
      if (impl.pop_wait_metric != nullptr) {
        impl.pop_wait_metric->observe(static_cast<double>(wait_ns) / 1e6);
      }
      Timeline::instance().record_wait("queue.pop_wait", wait_ns);
    };
    impl.queue.set_wait_hooks(std::move(hooks));
  }

  if (!results_path.empty()) {
    const std::filesystem::path parent =
        std::filesystem::path(results_path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
    }
    impl.out.open(results_path,
                  append ? (std::ios::out | std::ios::app)
                         : (std::ios::out | std::ios::trunc));
    if (!impl.out) {
      summary.error = "cannot open " + results_path + " for writing";
      return summary;
    }
    if (!append) {
      impl.out << header << '\n';
      impl.out.flush();
    }
  }

  const auto write_manifest = [&](std::size_t emitted, bool complete) {
    if (impl.manifest_path.empty()) return;
    std::ofstream manifest(impl.manifest_path, std::ios::trunc);
    if (!manifest) return;
    manifest << impl.manifest_prefix << emitted
             << ",\"complete\":" << (complete ? "true" : "false") << "}\n";
  };
  write_manifest(completed, completed == summary.jobs_total);

  {
    const std::lock_guard<std::mutex> lock(run_mutex_);
    active_ = &impl;
  }

  // ---- collector ------------------------------------------------------
  // Records are emitted strictly in job-index order: out-of-order
  // completions park in `pending` until their turn.  This (plus the
  // record text being a pure function of the job) is the whole
  // byte-identity story.
  const auto submit = [&](std::size_t index, ExecResult result) -> bool {
    std::function<void(std::size_t)> notify;
    std::size_t notify_emitted = 0;
    std::size_t notify_errors = 0;
    bool resolved_here = true;
    // Time the whole serialized section -- collector-lock acquisition,
    // in-order flush and manifest rewrite -- as "emission stall": the
    // serial tail every worker pays per completed job.  The clock is read
    // only when the histogram is bound; the WSN_SPAN costs one relaxed
    // load when profiling is fully off.
    std::chrono::steady_clock::time_point stall_start{};
    if (impl.emit_stall_metric != nullptr) {
      stall_start = std::chrono::steady_clock::now();
    }
    {
      WSN_SPAN("scenario.emit_stall");
      const std::lock_guard<std::mutex> lock(impl.collector_mutex);
      // First resolution wins: the watchdog may have already resolved
      // this job into a timeout record (or vice versa -- the worker beat
      // a near-deadline expiry).  The loser's result is dropped whole.
      if (impl.resolved[index] != 0) {
        resolved_here = false;
      } else {
        impl.resolved[index] = 1;
        impl.pending.emplace(index, std::move(result));
        while (true) {
          const auto it = impl.pending.find(impl.next_to_emit);
          if (it == impl.pending.end()) break;
          if (impl.out.is_open()) {
            impl.out << it->second.line << '\n';
            impl.out.flush();
          }
          if (config_.on_record) {
            config_.on_record(impl.next_to_emit, it->second.line);
          }
          if (ScenarioEnvelope* env =
                  envelope_for(it->second.fold.scenario)) {
            fold_into(*env, it->second.fold);
          }
          if (!it->second.fold.ok) {
            impl.errors += 1;
            if (impl.failed_metric != nullptr) impl.failed_metric->increment();
          } else if (impl.completed_metric != nullptr) {
            impl.completed_metric->increment();
          }
          impl.pending.erase(it);
          impl.next_to_emit += 1;
          impl.emitted += 1;
          write_manifest(impl.emitted, impl.emitted == impl.jobs_total);
        }
        notify_emitted = impl.emitted;
        notify_errors = impl.errors;
      }
    }
    if (impl.emit_stall_metric != nullptr) {
      impl.emit_stall_metric->observe(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - stall_start)
              .count());
    }
    if (!resolved_here) return false;
    // The hook runs outside the collector lock so it may call
    // request_cancel() (the kill/resume tests do exactly that).
    if (config_.on_emit) config_.on_emit(notify_emitted);
    // Heartbeat on the emission count crossing a multiple of the cadence.
    // Live pool telemetry is snapshotted here, outside the lock -- it is
    // advisory and never reaches the results stream.
    if (config_.heartbeat_every > 0 && config_.on_heartbeat &&
        notify_emitted > 0 &&
        notify_emitted % config_.heartbeat_every == 0) {
      HeartbeatRecord beat;
      beat.emitted = notify_emitted;
      beat.jobs_total = impl.jobs_total;
      beat.errors = notify_errors;
      beat.queue_depth = impl.queue.size();
      beat.workers_busy = impl.busy.load(std::memory_order_relaxed);
      config_.on_heartbeat(beat);
    }
    return true;
  };

  // ---- workers --------------------------------------------------------
  // Per-worker state board for the telemetry sampler: WorkerState values,
  // written with relaxed stores at the idle/busy/blocked transitions.
  // Only maintained when a sampler is attached -- unobserved runs skip
  // even the relaxed stores.
  const bool track_states = config_.sampler != nullptr;
  std::unique_ptr<std::atomic<std::uint8_t>[]> states;
  if (track_states) {
    states.reset(new std::atomic<std::uint8_t>[workers]);
    for (std::size_t i = 0; i < workers; ++i) {
      states[i].store(static_cast<std::uint8_t>(WorkerState::kIdle),
                      std::memory_order_relaxed);
    }
    config_.sampler->set_worker_states(
        [board = states.get(), workers]() {
          std::vector<WorkerState> snapshot(workers);
          for (std::size_t i = 0; i < workers; ++i) {
            snapshot[i] = static_cast<WorkerState>(
                board[i].load(std::memory_order_relaxed));
          }
          return snapshot;
        });
  }

  std::vector<WorkerSlot> inflight(workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      if (Timeline::instance().enabled()) {
        Timeline::instance().set_thread_label("worker/" + std::to_string(w));
      }
      Simulator sim;
      Timeline& timeline = Timeline::instance();
      double wait_ms_sum = 0.0;
      std::size_t wait_samples = 0;
      while (true) {
        if (config_.cancel != nullptr &&
            config_.cancel->load(std::memory_order_acquire) &&
            !stop_.load(std::memory_order_acquire)) {
          request_cancel();
        }
        // One wall-to-wall timeline span per loop pass (pop + execute +
        // submit), recorded at the bottom.  The contention spans nest
        // inside it, so attribution covers the worker's whole life with
        // no gaps for the scheduler to hide preemption in.  Disabled
        // cost: the one relaxed load behind enabled().
        const bool timeline_on = timeline.enabled();
        const std::uint64_t iteration_begin =
            timeline_on ? timeline.now_ns() : 0;
        auto ticket = impl.queue.pop();
        if (!ticket.has_value()) break;
        if (track_states) {
          states[w].store(static_cast<std::uint8_t>(WorkerState::kBusy),
                          std::memory_order_relaxed);
        }
        const auto popped = std::chrono::steady_clock::now();
        const double wait_ms =
            std::chrono::duration<double, std::milli>(popped -
                                                      ticket->second)
                .count();
        wait_ms_sum += wait_ms;
        wait_samples += 1;
        if (impl.wait_metric != nullptr) impl.wait_metric->observe(wait_ms);
        if (impl.queue_depth_metric != nullptr) {
          impl.queue_depth_metric->set(
              static_cast<double>(impl.queue.size()));
        }
        const std::size_t busy_now =
            impl.busy.fetch_add(1, std::memory_order_relaxed) + 1;
        if (impl.busy_metric != nullptr) {
          impl.busy_metric->set(static_cast<double>(busy_now));
        }
        // Arm the watchdog slot before the test hook runs: an injected
        // stall counts against the deadline exactly like a real one.
        WorkerSlot& slot = inflight[w];
        slot.stage.store("plan", std::memory_order_relaxed);
        slot.start_ms.store(steady_now_ms(), std::memory_order_relaxed);
        slot.index.store(ticket->first, std::memory_order_release);
        if (config_.before_job) config_.before_job(matrix_.jobs[ticket->first]);
        ExecResult result;
        {
          WSN_SPAN("scenario.job");
          result = execute_job(matrix_, matrix_.jobs[ticket->first], sim,
                               config_.store, config_.audit, &slot.stage);
        }
        slot.index.store(WorkerSlot::kIdle, std::memory_order_release);
        const std::size_t busy_after =
            impl.busy.fetch_sub(1, std::memory_order_relaxed) - 1;
        if (impl.busy_metric != nullptr) {
          impl.busy_metric->set(static_cast<double>(busy_after));
        }
        if (track_states) {
          states[w].store(static_cast<std::uint8_t>(WorkerState::kBlocked),
                          std::memory_order_relaxed);
        }
        submit(ticket->first, std::move(result));
        if (track_states) {
          states[w].store(static_cast<std::uint8_t>(WorkerState::kIdle),
                          std::memory_order_relaxed);
        }
        if (timeline_on) {
          timeline.record("scenario.iteration", iteration_begin,
                          timeline.now_ns());
        }
      }
      const std::lock_guard<std::mutex> lock(impl.collector_mutex);
      impl.queue_wait_ms_sum += wait_ms_sum;
      impl.queue_wait_samples += wait_samples;
    });
  }

  // ---- watchdog -------------------------------------------------------
  // Polls the worker slots and resolves any job past its deadline into an
  // error record so in-order emission keeps moving.  The stalled worker
  // is left alone; its eventual result loses the first-resolution race in
  // submit().  Poll cadence is a quarter of the deadline, clamped to
  // [1, 50] ms -- expiry detection lags the deadline by at most one poll.
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;
  if (config_.job_timeout_ms > 0) {
    watchdog = std::thread([&] {
      const auto poll = std::chrono::milliseconds(std::max<std::size_t>(
          1, std::min<std::size_t>(config_.job_timeout_ms / 4, 50)));
      while (!watchdog_stop.load(std::memory_order_acquire)) {
        const std::int64_t now_ms = steady_now_ms();
        for (WorkerSlot& slot : inflight) {
          const std::size_t index =
              slot.index.load(std::memory_order_acquire);
          if (index == WorkerSlot::kIdle) continue;
          const std::int64_t elapsed =
              now_ms - slot.start_ms.load(std::memory_order_relaxed);
          if (elapsed < static_cast<std::int64_t>(config_.job_timeout_ms)) {
            continue;
          }
          const char* stage = slot.stage.load(std::memory_order_relaxed);
          if (stage == nullptr) stage = "plan";
          const ScenarioJob& job = matrix_.jobs[index];
          ExecResult timed_out;
          timed_out.fold.scenario = job.entry->name;
          std::ostringstream line;
          line << "{\"job\":" << index << ",\"scenario\":\""
               << json_escape(job.entry->name)
               << "\",\"status\":\"error\",\"error\":\""
               << "watchdog: job exceeded " << config_.job_timeout_ms
               << " ms deadline\",\"elapsed_ms\":" << elapsed
               << ",\"stage\":\"" << stage << "\"}";
          timed_out.line = line.str();
          if (submit(index, std::move(timed_out)) &&
              impl.timeout_metric != nullptr) {
            impl.timeout_metric->increment();
          }
        }
        std::this_thread::sleep_for(poll);
      }
    });
  }

  // ---- producer (this thread) -----------------------------------------
  // Backpressure is the queue's: push blocks once `capacity` tickets are
  // in flight and returns false only after a cancel.
  if (Timeline::instance().enabled()) {
    Timeline::instance().set_thread_label("producer");
  }
  for (std::size_t index = completed; index < summary.jobs_total; ++index) {
    if (stop_.load(std::memory_order_acquire)) break;
    if (!impl.queue.push({index, std::chrono::steady_clock::now()})) break;
  }
  impl.queue.close();
  for (std::thread& t : pool) t.join();
  if (watchdog.joinable()) {
    watchdog_stop.store(true, std::memory_order_release);
    watchdog.join();
  }

  {
    const std::lock_guard<std::mutex> lock(run_mutex_);
    active_ = nullptr;
  }

  // Detach the state provider before the board leaves scope: the sampler
  // outlives this run and must not poll a dangling array.
  if (track_states) config_.sampler->set_worker_states({});

  summary.ok = true;
  summary.cancelled = stop_.load(std::memory_order_acquire);
  summary.jobs_run = impl.emitted - completed;
  summary.errors = impl.errors;
  summary.emitted = impl.emitted;
  summary.queue_wait_ms_mean =
      impl.queue_wait_samples == 0
          ? 0.0
          : impl.queue_wait_ms_sum /
                static_cast<double>(impl.queue_wait_samples);
  summary.envelopes = std::move(envelopes);
  write_manifest(summary.emitted, summary.emitted == summary.jobs_total);
  return summary;
}

std::string run_scenario_job(const JobMatrix& matrix, const ScenarioJob& job,
                             Simulator& sim, PlanStore* store, bool audit) {
  return execute_job(matrix, job, sim, store, audit).line;
}

}  // namespace wsn
