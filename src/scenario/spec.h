#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/types.h"
#include "fault/recovery.h"
#include "topology/topology.h"

/// Declarative batch workloads: the scenario spec and its expansion.
///
/// A scenario file is a small JSON document describing a *matrix* of
/// broadcast jobs -- the cross-product of {topology, source policy,
/// protocol, fault model, recovery policy, seed, repeat} that every study
/// in this repo (the paper's Tables 1-5, the baseline comparisons, the
/// resilience grids) used to hand-roll as its own bench binary:
///
///   {
///     "name": "paper",
///     "scenarios": [
///       {"name": "table34-2D-4", "family": "2D-4", "dims": [32, 16],
///        "sources": "all", "protocols": ["paper"]},
///       {"name": "loss-grid", "family": "2D-4", "dims": [12, 8],
///        "sources": [0, 51], "protocols": ["paper"],
///        "faults": [{"kind": "iid", "loss": 0.1}],
///        "recovery": ["none", "repeat-k"], "seeds": [1, 2, 3]}
///     ]
///   }
///
/// Per scenario entry:
///   family     "2D-3" | "2D-4" | "2D-8" | "3D-6"          (required)
///   dims       [m, n] or [m, n, l]; default paper size (32x16 / 8x8x8)
///   spacing    grid spacing in meters (default 0.5)
///   sources    "all" | "center" | "corner" | [id, ...]    (default "center")
///   protocols  ["paper" | "cds" | "etx" | "flooding" | "gossip" |
///               "ideal", ...]
///   faults     [{"kind": "none"|"iid"|"gilbert", "loss": r,
///                "burst": len, "crash_prob": p, "crash_horizon": h,
///                "crash_outage": o}, ...]                 (default none)
///   recovery   ["none" | "repeat-k" | "echo-repair" | "adaptive", ...]
///              (default none)
///   repeat_k   repeat-k factor (default 2)
///   arq_budget / arq_rounds   adaptive-recovery retry budget and wave
///              limit (default 256 / 8)
///   seeds      [u64, ...] (default [1])
///   repeats    trials per seed (default 1)
///   deadline_slots  per-job simulation slot budget (0 = library default)
///   packet_bits     packet length (default 512)
///   gossip_p / jitter   baseline protocol knobs (default 0.65 / 7)
///   outputs    {"etr": bool, "trace_dir": "path"}  -- extra per-job
///              outputs beyond the stats row
///
/// Expansion is *total and deterministic*: jobs are ordered entry-major,
/// then source, protocol, fault, recovery, seed, repeat -- the job index
/// is the job's identity across runs, which is what makes the result
/// stream resumable and byte-identical regardless of worker count.  An
/// entry whose cross-product is empty expands to one synthetic error job
/// so the condition surfaces as a per-job error record, never a silent
/// no-op and never a crash (the plan-store self-healing philosophy).
namespace wsn {

struct ScenarioFault {
  enum class Kind : std::uint8_t { kNone = 0, kIid, kGilbert };
  Kind kind = Kind::kNone;
  double loss = 0.0;        // mean per-link loss rate (iid / gilbert)
  double burst = 4.0;       // gilbert mean bad-burst length
  double crash_prob = 0.0;  // sampled node crashes, composable with loss
  Slot crash_horizon = 32;
  Slot crash_outage = 0;  // 0 = permanent

  /// True when any fault injection is configured.
  [[nodiscard]] bool any() const noexcept {
    return kind != Kind::kNone || crash_prob > 0.0;
  }
  /// Stable label used in job records and fingerprints, e.g. "none",
  /// "iid:0.1", "gilbert:0.1:4+crash:0.02:32:0".
  [[nodiscard]] std::string label() const;
};

struct ScenarioOutputs {
  /// Append ETR aggregates (mean, optimal share) to each job record; the
  /// measured half of the paper's Table 1.
  bool etr = false;
  /// When non-empty, write each job's event trace (obs JSONL schema) to
  /// `<trace_dir>/job_<index>.jsonl`.
  std::string trace_dir;
};

struct ScenarioEntry {
  enum class SourcePolicy : std::uint8_t { kAll = 0, kCenter, kCorner, kList };

  std::string name;
  std::string family;
  int m = 0, n = 0, l = 1;  // 0 = paper default for the family
  Meters spacing = 0.5;
  SourcePolicy source_policy = SourcePolicy::kCenter;
  std::vector<NodeId> source_list;  // kList only
  std::vector<std::string> protocols = {"paper"};
  std::vector<ScenarioFault> faults = {ScenarioFault{}};
  std::vector<RecoveryPolicy> recovery = {RecoveryPolicy::kNone};
  unsigned repeat_k = 2;
  std::size_t arq_budget = 256;  // adaptive recovery: retry budget
  std::size_t arq_rounds = 8;    // adaptive recovery: max repair waves
  std::vector<std::uint64_t> seeds = {1};
  std::uint32_t repeats = 1;
  Slot deadline_slots = 0;
  std::size_t packet_bits = 512;
  double gossip_p = 0.65;
  Slot jitter = 7;
  ScenarioOutputs outputs;
};

struct ScenarioSpec {
  std::string name;
  std::vector<ScenarioEntry> entries;
};

/// Parses a spec out of a JSON document / file.  Returns false with a
/// diagnostic in `error` on any schema violation (unknown family or
/// protocol, malformed numbers, missing required fields); a spec either
/// loads completely or not at all.
[[nodiscard]] bool parse_scenario_spec(const JsonValue& doc,
                                       ScenarioSpec& out, std::string& error);
[[nodiscard]] bool load_scenario_file(const std::string& path,
                                      ScenarioSpec& out, std::string& error);

/// One fully-expanded job.  `error` non-empty marks a synthetic error job
/// (e.g. the entry's cross-product was empty): the engine emits an error
/// record for it instead of simulating.
struct ScenarioJob {
  std::size_t index = 0;
  const ScenarioEntry* entry = nullptr;
  std::size_t topology = 0;  // index into JobMatrix::topologies
  NodeId source = 0;
  std::string protocol = "paper";
  ScenarioFault fault;
  RecoveryPolicy recovery = RecoveryPolicy::kNone;
  std::uint64_t seed = 0;
  std::uint32_t rep = 0;
  std::string error;
};

/// The expanded matrix.  Topologies are built once per distinct
/// (family, dims, spacing) and shared by every job over them -- Topology
/// reads are thread-safe, and sharing one instance lets the plan store
/// memoize its adjacency digest across the whole run.
struct JobMatrix {
  ScenarioSpec spec;  // jobs point into spec.entries; keep together
  std::vector<std::unique_ptr<Topology>> topologies;
  std::vector<ScenarioJob> jobs;
  /// Order-sensitive digest of every job's identity, stamped into the
  /// result header and the checkpoint manifest: a resumed run refuses to
  /// append to results produced by a different spec.
  std::uint64_t fingerprint = 0;

  [[nodiscard]] const Topology& topology_of(const ScenarioJob& job) const {
    return *topologies[job.topology];
  }
};

/// Expands `spec` into the deterministic job list described above.
/// Returns false with `error` set when a topology cannot be built or an
/// explicit source id is out of range (spec-level errors); an *empty*
/// cross-product is not an error here -- it becomes an error job.
[[nodiscard]] bool expand_jobs(ScenarioSpec spec, JobMatrix& out,
                               std::string& error);

/// The canonical one-line identity of a job (fingerprint + debugging).
[[nodiscard]] std::string job_identity(const ScenarioJob& job);

[[nodiscard]] std::string_view to_string(
    ScenarioEntry::SourcePolicy policy) noexcept;

}  // namespace wsn
