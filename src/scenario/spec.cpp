#include "scenario/spec.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/assert.h"
#include "common/string_util.h"
#include "topology/factory.h"
#include "topology/graph_algos.h"

namespace wsn {

namespace {

const std::vector<std::string>& known_protocols() {
  static const std::vector<std::string> kProtocols = {
      "paper", "cds", "etx", "flooding", "gossip", "ideal"};
  return kProtocols;
}

bool known_recovery(std::string_view name) {
  return name == "none" || name == "repeat-k" || name == "echo-repair" ||
         name == "adaptive";
}

/// FNV-1a, the classic order-sensitive stream hash; collision resistance
/// is irrelevant here -- the fingerprint only needs to *change* when the
/// spec does.
std::uint64_t fnv1a(std::uint64_t hash, std::string_view text) noexcept {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string format_double(double value) {
  // Shortest round-trip form keeps labels/identities stable and readable.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", value);
  return buf;
}

bool fail(std::string& error, std::string message) {
  error = std::move(message);
  return false;
}

bool parse_fault(const JsonValue& doc, std::string_view where,
                 ScenarioFault& out, std::string& error) {
  if (!doc.is_object()) {
    return fail(error, std::string(where) + ": fault must be an object");
  }
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "kind") {
      if (!value.is_string()) {
        return fail(error, std::string(where) + ": fault kind must be a "
                           "string");
      }
      const std::string& kind = value.as_string();
      if (kind == "none") {
        out.kind = ScenarioFault::Kind::kNone;
      } else if (kind == "iid") {
        out.kind = ScenarioFault::Kind::kIid;
      } else if (kind == "gilbert") {
        out.kind = ScenarioFault::Kind::kGilbert;
      } else {
        return fail(error, std::string(where) + ": unknown fault kind '" +
                           kind + "' (none|iid|gilbert)");
      }
    } else if (key == "loss") {
      if (!value.is_number() || value.as_number() < 0.0 ||
          value.as_number() >= 1.0) {
        return fail(error,
                    std::string(where) + ": loss must be in [0, 1)");
      }
      out.loss = value.as_number();
    } else if (key == "burst") {
      if (!value.is_number() || value.as_number() < 1.0) {
        return fail(error, std::string(where) + ": burst must be >= 1");
      }
      out.burst = value.as_number();
    } else if (key == "crash_prob") {
      if (!value.is_number() || value.as_number() < 0.0 ||
          value.as_number() > 1.0) {
        return fail(error,
                    std::string(where) + ": crash_prob must be in [0, 1]");
      }
      out.crash_prob = value.as_number();
    } else if (key == "crash_horizon" || key == "crash_outage") {
      std::uint64_t v = 0;
      if (!value.to_u64(v)) {
        return fail(error, std::string(where) + ": " + key +
                           " must be a non-negative integer");
      }
      (key == "crash_horizon" ? out.crash_horizon : out.crash_outage) =
          static_cast<Slot>(v);
    } else {
      return fail(error,
                  std::string(where) + ": unknown fault key '" + key + "'");
    }
  }
  if (out.kind != ScenarioFault::Kind::kNone && out.loss == 0.0) {
    // Harmless but almost certainly a typo'd spec; surface it.
    return fail(error, std::string(where) +
                       ": loss fault configured with loss = 0");
  }
  return true;
}

bool parse_entry(const JsonValue& doc, std::size_t position,
                 ScenarioEntry& out, std::string& error) {
  const std::string where =
      "scenarios[" + std::to_string(position) + "]";
  if (!doc.is_object()) {
    return fail(error, where + ": entry must be an object");
  }
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "name") {
      if (!value.is_string() || value.as_string().empty()) {
        return fail(error, where + ": name must be a non-empty string");
      }
      out.name = value.as_string();
    } else if (key == "family") {
      if (!value.is_string()) {
        return fail(error, where + ": family must be a string");
      }
      out.family = value.as_string();
      const auto& families = regular_families();
      if (std::find(families.begin(), families.end(), out.family) ==
          families.end()) {
        return fail(error,
                    where + ": unknown family '" + out.family + "'");
      }
    } else if (key == "dims") {
      if (!value.is_array() || value.as_array().size() < 2 ||
          value.as_array().size() > 3) {
        return fail(error, where + ": dims must be [m, n] or [m, n, l]");
      }
      const auto& dims = value.as_array();
      std::uint64_t d[3] = {0, 0, 1};
      for (std::size_t i = 0; i < dims.size(); ++i) {
        if (!dims[i].to_u64(d[i]) || d[i] == 0 || d[i] > 4096) {
          return fail(error,
                      where + ": dims entries must be in [1, 4096]");
        }
      }
      out.m = static_cast<int>(d[0]);
      out.n = static_cast<int>(d[1]);
      out.l = static_cast<int>(d[2]);
    } else if (key == "spacing") {
      if (!value.is_number() || value.as_number() <= 0.0) {
        return fail(error, where + ": spacing must be > 0");
      }
      out.spacing = value.as_number();
    } else if (key == "sources") {
      if (value.is_string()) {
        const std::string& policy = value.as_string();
        if (policy == "all") {
          out.source_policy = ScenarioEntry::SourcePolicy::kAll;
        } else if (policy == "center") {
          out.source_policy = ScenarioEntry::SourcePolicy::kCenter;
        } else if (policy == "corner") {
          out.source_policy = ScenarioEntry::SourcePolicy::kCorner;
        } else {
          return fail(error, where + ": unknown source policy '" + policy +
                             "' (all|center|corner|[ids])");
        }
      } else if (value.is_array()) {
        out.source_policy = ScenarioEntry::SourcePolicy::kList;
        out.source_list.clear();
        for (const JsonValue& id : value.as_array()) {
          std::uint64_t v = 0;
          if (!id.to_u64(v) || v >= kInvalidNode) {
            return fail(error,
                        where + ": source ids must be non-negative "
                                "integers");
          }
          out.source_list.push_back(static_cast<NodeId>(v));
        }
      } else {
        return fail(error,
                    where + ": sources must be a policy string or a list");
      }
    } else if (key == "protocols") {
      if (!value.is_array()) {
        return fail(error, where + ": protocols must be a list");
      }
      out.protocols.clear();
      for (const JsonValue& p : value.as_array()) {
        if (!p.is_string()) {
          return fail(error, where + ": protocols entries must be strings");
        }
        std::string name = p.as_string();
        if (name == "flood") name = "flooding";  // meshbcast_cli spelling
        const auto& known = known_protocols();
        if (std::find(known.begin(), known.end(), name) == known.end()) {
          return fail(error, where + ": unknown protocol '" +
                             p.as_string() +
                             "' (paper|cds|etx|flooding|gossip|ideal)");
        }
        out.protocols.push_back(std::move(name));
      }
    } else if (key == "faults") {
      if (!value.is_array()) {
        return fail(error, where + ": faults must be a list");
      }
      out.faults.clear();
      for (const JsonValue& f : value.as_array()) {
        ScenarioFault fault;
        if (!parse_fault(f, where, fault, error)) return false;
        out.faults.push_back(fault);
      }
    } else if (key == "recovery") {
      if (!value.is_array()) {
        return fail(error, where + ": recovery must be a list");
      }
      out.recovery.clear();
      for (const JsonValue& r : value.as_array()) {
        if (!r.is_string() || !known_recovery(r.as_string())) {
          return fail(error, where + ": unknown recovery policy "
                             "(none|repeat-k|echo-repair|adaptive)");
        }
        out.recovery.push_back(parse_recovery_policy(r.as_string()));
      }
    } else if (key == "repeat_k") {
      std::uint64_t v = 0;
      if (!value.to_u64(v) || v < 1 || v > 16) {
        return fail(error, where + ": repeat_k must be in [1, 16]");
      }
      out.repeat_k = static_cast<unsigned>(v);
    } else if (key == "arq_budget") {
      std::uint64_t v = 0;
      if (!value.to_u64(v) || v > (1u << 20)) {
        return fail(error,
                    where + ": arq_budget must be a small non-negative "
                            "integer");
      }
      out.arq_budget = static_cast<std::size_t>(v);
    } else if (key == "arq_rounds") {
      std::uint64_t v = 0;
      if (!value.to_u64(v) || v < 1 || v > 64) {
        return fail(error, where + ": arq_rounds must be in [1, 64]");
      }
      out.arq_rounds = static_cast<std::size_t>(v);
    } else if (key == "seeds") {
      if (!value.is_array()) {
        return fail(error, where + ": seeds must be a list");
      }
      out.seeds.clear();
      for (const JsonValue& s : value.as_array()) {
        std::uint64_t v = 0;
        if (!s.to_u64(v)) {
          return fail(error,
                      where + ": seeds must be non-negative integers");
        }
        out.seeds.push_back(v);
      }
    } else if (key == "repeats") {
      std::uint64_t v = 0;
      if (!value.to_u64(v) || v > (1u << 20)) {
        return fail(error, where + ": repeats must be a small non-negative "
                           "integer");
      }
      out.repeats = static_cast<std::uint32_t>(v);
    } else if (key == "deadline_slots") {
      std::uint64_t v = 0;
      if (!value.to_u64(v) || v > kNeverSlot - 1) {
        return fail(error,
                    where + ": deadline_slots must be a non-negative "
                            "integer");
      }
      out.deadline_slots = static_cast<Slot>(v);
    } else if (key == "packet_bits") {
      std::uint64_t v = 0;
      if (!value.to_u64(v) || v == 0) {
        return fail(error, where + ": packet_bits must be >= 1");
      }
      out.packet_bits = static_cast<std::size_t>(v);
    } else if (key == "gossip_p") {
      if (!value.is_number() || value.as_number() <= 0.0 ||
          value.as_number() > 1.0) {
        return fail(error, where + ": gossip_p must be in (0, 1]");
      }
      out.gossip_p = value.as_number();
    } else if (key == "jitter") {
      std::uint64_t v = 0;
      if (!value.to_u64(v) || v > 1024) {
        return fail(error, where + ": jitter must be in [0, 1024]");
      }
      out.jitter = static_cast<Slot>(v);
    } else if (key == "outputs") {
      if (!value.is_object()) {
        return fail(error, where + ": outputs must be an object");
      }
      for (const auto& [okey, ovalue] : value.as_object()) {
        if (okey == "etr") {
          if (!ovalue.is_bool()) {
            return fail(error, where + ": outputs.etr must be a bool");
          }
          out.outputs.etr = ovalue.as_bool();
        } else if (okey == "trace_dir") {
          if (!ovalue.is_string()) {
            return fail(error,
                        where + ": outputs.trace_dir must be a string");
          }
          out.outputs.trace_dir = ovalue.as_string();
        } else if (okey == "stats") {
          // Stats rows are always emitted; the key is accepted for
          // spec readability.
          if (!ovalue.is_bool() || !ovalue.as_bool()) {
            return fail(error, where + ": outputs.stats can only be true");
          }
        } else {
          return fail(error,
                      where + ": unknown outputs key '" + okey + "'");
        }
      }
    } else {
      return fail(error, where + ": unknown key '" + key + "'");
    }
  }
  if (out.family.empty()) {
    return fail(error, where + ": family is required");
  }
  if (out.name.empty()) out.name = out.family;
  return true;
}

}  // namespace

std::string ScenarioFault::label() const {
  std::string out;
  switch (kind) {
    case Kind::kNone: out = "none"; break;
    case Kind::kIid: out = "iid:" + format_double(loss); break;
    case Kind::kGilbert:
      out = "gilbert:" + format_double(loss) + ":" + format_double(burst);
      break;
  }
  if (crash_prob > 0.0) {
    if (kind == Kind::kNone) out.clear();
    if (!out.empty()) out += "+";
    out += "crash:" + format_double(crash_prob) + ":" +
           std::to_string(crash_horizon) + ":" +
           std::to_string(crash_outage);
  }
  return out;
}

std::string_view to_string(ScenarioEntry::SourcePolicy policy) noexcept {
  switch (policy) {
    case ScenarioEntry::SourcePolicy::kAll: return "all";
    case ScenarioEntry::SourcePolicy::kCenter: return "center";
    case ScenarioEntry::SourcePolicy::kCorner: return "corner";
    case ScenarioEntry::SourcePolicy::kList: return "list";
  }
  return "?";
}

bool parse_scenario_spec(const JsonValue& doc, ScenarioSpec& out,
                         std::string& error) {
  if (!doc.is_object()) {
    return fail(error, "spec: top level must be an object");
  }
  out = ScenarioSpec{};
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "name") {
      if (!value.is_string()) {
        return fail(error, "spec: name must be a string");
      }
      out.name = value.as_string();
    } else if (key == "scenarios") {
      if (!value.is_array()) {
        return fail(error, "spec: scenarios must be a list");
      }
      for (std::size_t i = 0; i < value.as_array().size(); ++i) {
        ScenarioEntry entry;
        if (!parse_entry(value.as_array()[i], i, entry, error)) {
          return false;
        }
        out.entries.push_back(std::move(entry));
      }
    } else {
      return fail(error, "spec: unknown key '" + key + "'");
    }
  }
  if (out.entries.empty()) {
    return fail(error, "spec: at least one scenario entry is required");
  }
  if (out.name.empty()) out.name = "scenario";
  return true;
}

bool load_scenario_file(const std::string& path, ScenarioSpec& out,
                        std::string& error) {
  std::ifstream in(path);
  if (!in) {
    return fail(error, "cannot read " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  JsonValue doc;
  std::string json_error;
  if (!parse_json(text.str(), doc, &json_error)) {
    return fail(error, path + ": " + json_error);
  }
  return parse_scenario_spec(doc, out, error);
}

std::string job_identity(const ScenarioJob& job) {
  const ScenarioEntry& e = *job.entry;
  if (!job.error.empty()) {
    return "scenario=" + e.name + " error=" + job.error;
  }
  return "scenario=" + e.name + " family=" + e.family + " dims=" +
         std::to_string(e.m) + "x" + std::to_string(e.n) + "x" +
         std::to_string(e.l) + " spacing=" + format_double(e.spacing) +
         " src=" + std::to_string(job.source) + " proto=" + job.protocol +
         " fault=" + job.fault.label() +
         " recov=" + std::string(to_string(job.recovery)) +
         " k=" + std::to_string(e.repeat_k) +
         " arq=" + std::to_string(e.arq_budget) + ":" +
         std::to_string(e.arq_rounds) +
         " seed=" + std::to_string(job.seed) +
         " rep=" + std::to_string(job.rep) +
         " bits=" + std::to_string(e.packet_bits) +
         " deadline=" + std::to_string(e.deadline_slots) +
         " gossip_p=" + format_double(e.gossip_p) +
         " jitter=" + std::to_string(e.jitter);
}

bool expand_jobs(ScenarioSpec spec, JobMatrix& out, std::string& error) {
  out = JobMatrix{};
  out.spec = std::move(spec);

  // Deduplicate topologies by construction key; entries referencing the
  // same instance share one object (and one plan-store digest).
  std::vector<std::string> topo_keys;
  const auto topology_index = [&](ScenarioEntry& entry) {
    // Resolve defaulted dims to the paper sizes first so every job's
    // identity names its concrete instance.
    if (entry.m == 0) {
      if (entry.family == "3D-6") {
        entry.m = PaperConfig::kMesh3d;
        entry.n = PaperConfig::kMesh3d;
        entry.l = PaperConfig::kMesh3d;
      } else {
        entry.m = PaperConfig::kMesh2dM;
        entry.n = PaperConfig::kMesh2dN;
        entry.l = 1;
      }
    }
    const std::string key = entry.family + "/" + std::to_string(entry.m) +
                            "x" + std::to_string(entry.n) + "x" +
                            std::to_string(entry.l) + "@" +
                            format_double(entry.spacing);
    for (std::size_t i = 0; i < topo_keys.size(); ++i) {
      if (topo_keys[i] == key) return i;
    }
    topo_keys.push_back(key);
    out.topologies.push_back(make_mesh(entry.family, entry.m, entry.n,
                                       entry.l, entry.spacing));
    return out.topologies.size() - 1;
  };

  for (ScenarioEntry& entry : out.spec.entries) {
    const std::size_t topo = topology_index(entry);
    const Topology& instance = *out.topologies[topo];

    std::vector<NodeId> sources;
    switch (entry.source_policy) {
      case ScenarioEntry::SourcePolicy::kAll:
        sources.resize(instance.num_nodes());
        for (NodeId v = 0; v < instance.num_nodes(); ++v) sources[v] = v;
        break;
      case ScenarioEntry::SourcePolicy::kCenter:
        sources.push_back(graph_center(instance));
        break;
      case ScenarioEntry::SourcePolicy::kCorner:
        sources.push_back(0);
        break;
      case ScenarioEntry::SourcePolicy::kList:
        for (const NodeId id : entry.source_list) {
          if (id >= instance.num_nodes()) {
            return fail(error, "scenario '" + entry.name + "': source " +
                               std::to_string(id) + " out of range (" +
                               std::to_string(instance.num_nodes()) +
                               " nodes)");
          }
          sources.push_back(id);
        }
        break;
    }

    const std::size_t before = out.jobs.size();
    for (const NodeId source : sources) {
      for (const std::string& protocol : entry.protocols) {
        for (const ScenarioFault& fault : entry.faults) {
          for (const RecoveryPolicy recovery : entry.recovery) {
            for (const std::uint64_t seed : entry.seeds) {
              for (std::uint32_t rep = 0; rep < entry.repeats; ++rep) {
                ScenarioJob job;
                job.index = out.jobs.size();
                job.entry = &entry;
                job.topology = topo;
                job.source = source;
                job.protocol = protocol;
                job.fault = fault;
                job.recovery = recovery;
                job.seed = seed;
                job.rep = rep;
                out.jobs.push_back(std::move(job));
              }
            }
          }
        }
      }
    }
    if (out.jobs.size() == before) {
      // An empty cross-product surfaces as one per-job error record.
      ScenarioJob job;
      job.index = out.jobs.size();
      job.entry = &entry;
      job.topology = topo;
      job.error = "empty job matrix (no sources, protocols, faults, "
                  "recovery policies, seeds or repeats)";
      out.jobs.push_back(std::move(job));
    }
  }

  std::uint64_t hash = fnv1a(0xcbf29ce484222325ull, out.spec.name);
  for (const ScenarioJob& job : out.jobs) {
    hash = fnv1a(hash, "\n");
    hash = fnv1a(hash, job_identity(job));
  }
  out.fingerprint = hash;
  return true;
}

}  // namespace wsn
