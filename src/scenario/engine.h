#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "scenario/spec.h"
#include "store/plan_store.h"

/// The scenario engine: executes an expanded job matrix (scenario/spec.h)
/// on a long-lived worker pool fed through a bounded MPMC queue
/// (common/bounded_queue.h), streaming one JSONL record per job into a
/// results file that doubles as the run's checkpoint.
///
/// Guarantees, in the order the acceptance tests check them:
///
///   * Determinism.  Every record is a pure function of its job (wall
///     clock, worker count, queue timing and plan-cache temperature never
///     leak into a record), and records are emitted in strict job-index
///     order -- the results file is byte-identical at workers=1 and
///     workers=N, cold or warm store.
///   * Backpressure.  The producer blocks once `queue_capacity` jobs are
///     in flight; a million-job matrix never materializes ahead of the
///     workers.
///   * Cooperative cancellation.  `request_cancel()` (or the external
///     `cancel` flag, polled between jobs -- a SIGINT handler can set it
///     asynchronously) lets in-flight jobs finish, discards the backlog,
///     and leaves a valid, resumable prefix on disk.
///   * Resume.  `--resume` scans the existing results file: the header
///     must carry this matrix's fingerprint (a different spec is a hard
///     error), then the longest valid prefix of records counts as done and
///     execution continues from the first missing job.  A truncated,
///     corrupt or partially-written line -- and anything after it -- is
///     simply redone: plan-store philosophy, a bad checkpoint is a redo,
///     never a crash.  A resumed run's final file is byte-identical to an
///     uninterrupted one.
///
/// A sidecar manifest (`<results>.manifest`) mirrors progress for cheap
/// outside inspection; it is advisory -- the results file is the source of
/// truth and a missing or corrupt manifest is ignored.
namespace wsn {

class TelemetrySampler;

// Progress heartbeats (HeartbeatRecord, heartbeat_json) live in
// obs/heartbeat.h, shared with the service daemon; `on_heartbeat` below
// fires every `heartbeat_every` emitted records.  Cadence is COUNT-based
// (a pure function of emission progress) but the payload carries live
// pool telemetry -- queue depth, busy workers -- which is exactly why
// heartbeats go through a callback and never into the results stream:
// records stay byte-identical across worker counts, heartbeats do not
// have to.

struct EngineConfig {
  /// Worker threads; 0 resolves through flag > MESHBCAST_THREADS >
  /// hardware (common/parallel.h).
  std::size_t workers = 0;
  /// Bounded queue capacity; 0 = max(2 x workers, 16).
  std::size_t queue_capacity = 0;
  /// Continue an interrupted run instead of truncating the results file.
  bool resume = false;
  /// Shared plan cache for the paper/cds compiles (nullable).
  PlanStore* store = nullptr;
  /// Metrics mirror (nullable): scenario.jobs_completed / jobs_failed /
  /// jobs_skipped counters and the scenario.queue_wait_ms histogram.
  MetricsRegistry* metrics = nullptr;
  /// External cancellation flag, polled between jobs (nullable).  Safe to
  /// set from a signal handler.
  const std::atomic<bool>* cancel = nullptr;
  /// Called after each record hits the stream with the total emitted so
  /// far (resumed records included).  Runs on a worker thread; used for
  /// progress display and by the kill/resume tests.
  std::function<void(std::size_t emitted)> on_emit;
  /// Audit every simulated job's event stream in-line (obs/audit) and
  /// append the deterministic verdict -- checks run, violation count,
  /// failed check names -- to its record.  Observability stays opt-in:
  /// without this flag jobs run unobserved exactly as before.
  bool audit = false;
  /// Fire `on_heartbeat` every N emitted records (0 = off).
  std::size_t heartbeat_every = 0;
  /// Heartbeat hook; runs on a worker thread, outside the collector lock.
  std::function<void(const HeartbeatRecord&)> on_heartbeat;
  /// In-order record sink (nullable): called with each record line (no
  /// trailing newline) in strict job-index order as it is emitted -- the
  /// same bytes the results file receives, which is how the service
  /// daemon streams scenario results to a client while keeping them
  /// byte-identical to an offline run.  Fires only for records emitted
  /// this invocation (a resumed prefix is not replayed).  Runs under the
  /// collector lock so ordering is structural; a slow sink backpressures
  /// emission exactly like a slow disk.
  std::function<void(std::size_t index, const std::string& line)> on_record;
  /// Per-job watchdog deadline in milliseconds (0 = off).  A job running
  /// past its deadline is resolved into an error record carrying the
  /// elapsed time and the execution stage it was in, so in-order emission
  /// proceeds past it instead of stalling forever.  The stalled worker is
  /// NOT killed (threads cannot be safely cancelled): when the job
  /// eventually finishes, its real result is discarded -- first
  /// resolution wins.  Deadlines are wall-clock events, so the
  /// byte-identity guarantee only covers runs in which no job timed out.
  std::size_t job_timeout_ms = 0;
  /// Test hook, called on the worker thread immediately before a job
  /// executes (nullable).  Exists so tests can inject a deterministic
  /// stall and exercise the watchdog.
  std::function<void(const ScenarioJob&)> before_job;
  /// Periodic utilization sampler (nullable, obs/sampler.h).  When set,
  /// the engine publishes a per-worker state board (idle/busy/blocked)
  /// that the sampler polls into the `meshbcast.timeseries` stream.  The
  /// caller owns start/stop; the engine wires the state provider for the
  /// duration of run() and detaches it before returning.  Without a
  /// sampler the workers skip even the relaxed state stores.
  TelemetrySampler* sampler = nullptr;
};

/// Per-scenario aggregate over the ok records -- the best/worst/max-delay
/// envelope the paper's Tables 3-5 are built from, folded incrementally so
/// the runner can print the tables without re-reading the results file.
struct ScenarioEnvelope {
  std::string scenario;
  std::size_t jobs = 0;
  std::size_t errors = 0;
  NodeId best_source = kInvalidNode;   // minimal total energy (Table 3)
  NodeId worst_source = kInvalidNode;  // maximal total energy (Table 4)
  Joules best_energy = std::numeric_limits<double>::infinity();
  Joules worst_energy = 0.0;
  double energy_sum = 0.0;
  std::size_t best_tx = 0, best_rx = 0;
  std::size_t worst_tx = 0, worst_rx = 0;
  Slot max_delay = 0;  // over all records (Table 5)
  bool all_reached = true;
  double etr_share_sum = 0.0;  // over records carrying ETR output
  std::size_t etr_jobs = 0;

  [[nodiscard]] double mean_energy() const noexcept {
    return jobs == 0 ? 0.0 : energy_sum / static_cast<double>(jobs);
  }
};

struct RunSummary {
  bool ok = false;          // false: I/O or resume-validation failure
  std::string error;        // set when !ok
  bool cancelled = false;   // stopped cooperatively before completion
  bool resumed = false;     // a valid prefix was found and kept
  std::size_t jobs_total = 0;
  std::size_t jobs_skipped = 0;  // satisfied by the resumed prefix
  std::size_t jobs_run = 0;      // executed this invocation
  std::size_t errors = 0;        // error records, prefix included
  std::size_t emitted = 0;       // records in the file now
  /// Mean queue wait of the jobs run this invocation, ms (observability
  /// only -- never written into records).
  double queue_wait_ms_mean = 0.0;
  std::vector<ScenarioEnvelope> envelopes;  // spec entry order
};

class ScenarioEngine {
 public:
  /// `matrix` must outlive the engine.
  ScenarioEngine(const JobMatrix& matrix, EngineConfig config);

  /// Executes the matrix, streaming records to `results_path` (and the
  /// `<results_path>.manifest` sidecar).  Blocking; returns the summary.
  /// An EMPTY `results_path` runs stream-only: no file, no manifest, no
  /// resume -- records reach `EngineConfig::on_record` alone (the
  /// service daemon's mode).
  [[nodiscard]] RunSummary run(const std::string& results_path);

  /// Cooperative cancel: in-flight jobs finish, the backlog is dropped.
  /// Callable from any thread (e.g. from `on_emit`).
  void request_cancel();

  /// The deterministic header line (no trailing newline) this matrix
  /// stamps at the top of its results file.
  [[nodiscard]] std::string header_line() const;

 private:
  struct Impl;
  const JobMatrix& matrix_;
  EngineConfig config_;
  std::atomic<bool> stop_{false};
  Impl* active_ = nullptr;  // run()-scoped; guarded by run_mutex_
  std::mutex run_mutex_;
};

/// Runs one expanded job to its deterministic record line -- the exact
/// bytes the engine would emit for it (same plan-store interaction, same
/// audit fold).  This is the service daemon's `simulate` path: one
/// request, one record, no pool.  `sim` is the caller's reusable
/// simulator; `store` and `audit` mean what they mean in EngineConfig.
[[nodiscard]] std::string run_scenario_job(const JobMatrix& matrix,
                                           const ScenarioJob& job,
                                           Simulator& sim, PlanStore* store,
                                           bool audit);

}  // namespace wsn
