#include "service/server.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/assert.h"
#include "obs/profile.h"
#include "obs/timeline.h"
#include "protocol/cds_broadcast.h"
#include "protocol/registry.h"
#include "scenario/engine.h"
#include "sim/simulator.h"
#include "topology/factory.h"

namespace wsn {

namespace {

/// Latency bucket edges in milliseconds: sub-100us plan-cache hits up to
/// multi-second scenario batches.
std::vector<double> latency_bounds() {
  return {0.05, 0.1,  0.25, 0.5,  1.0,   2.5,   5.0,    10.0,
          25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0};
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool known_family(const std::string& family) {
  const std::vector<std::string>& families = regular_families();
  return std::find(families.begin(), families.end(), family) !=
         families.end();
}

std::uint64_t wall_micros() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(now);
  return us.count() < 0 ? 0 : static_cast<std::uint64_t>(us.count());
}

JournalMethod journal_method_for(RpcType type) noexcept {
  switch (type) {
    case RpcType::kSimulate: return JournalMethod::kSimulate;
    case RpcType::kScenario: return JournalMethod::kScenario;
    default: return JournalMethod::kPlan;
  }
}

}  // namespace

MeshbcastService::MeshbcastService(ServiceConfig config)
    : config_(std::move(config)) {}

MeshbcastService::~MeshbcastService() { shutdown(); }

bool MeshbcastService::start(std::string& error) {
  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  WSN_EXPECTS(!started_ && !stopped_);
  worker_count_ = config_.workers == 0 ? 2 : config_.workers;
  const std::size_t capacity = config_.queue_capacity == 0
                                   ? std::max<std::size_t>(2 * worker_count_, 8)
                                   : config_.queue_capacity;
  if (!config_.unix_path.empty()) {
    if (!Listener::listen_unix(config_.unix_path, listener_, error)) {
      return false;
    }
    address_ = "unix:" + config_.unix_path;
  } else {
    if (!Listener::listen_tcp(config_.tcp_port, listener_, error)) {
      return false;
    }
    address_ = "tcp:127.0.0.1:" + std::to_string(listener_.port());
  }
  if (config_.metrics != nullptr) {
    MetricsRegistry& reg = *config_.metrics;
    m_.requests = &reg.counter("service.requests");
    m_.served = &reg.counter("service.requests_ok");
    m_.errors = &reg.counter("service.requests_error");
    m_.sheds = &reg.counter("service.sheds");
    m_.bad_frames = &reg.counter("service.bad_frames");
    m_.connections = &reg.counter("service.connections");
    m_.queue_depth = &reg.gauge("service.queue_depth");
    m_.workers_busy = &reg.gauge("service.workers_busy");
    m_.connections_open = &reg.gauge("service.connections_open");
    m_.request_ms = &reg.histogram("service.request_ms", latency_bounds());
    m_.plan_ms = &reg.histogram("service.plan_ms", latency_bounds());
    m_.simulate_ms = &reg.histogram("service.simulate_ms", latency_bounds());
    m_.scenario_ms = &reg.histogram("service.scenario_ms", latency_bounds());
    SloTracker::Config slo_config;
    slo_config.window = std::max<std::size_t>(config_.slo_window, 1);
    slo_ = std::make_unique<SloTracker>(config_.metrics, slo_config);
    if (config_.journal != nullptr) {
      m_.lifetime_requests = &reg.gauge("service.lifetime_requests");
      m_.lifetime_served = &reg.gauge("service.lifetime_served");
      m_.lifetime_errors = &reg.gauge("service.lifetime_errors");
      m_.lifetime_sheds = &reg.gauge("service.lifetime_sheds");
    }
  }
  if (config_.journal != nullptr) {
    request_seq_.store(config_.journal->replay().max_seq,
                       std::memory_order_relaxed);
    update_lifetime_gauges();
  }
  queue_ = std::make_unique<BoundedQueue<Work>>(capacity);
  started_at_ = std::chrono::steady_clock::now();
  workers_.reserve(worker_count_);
  for (std::size_t w = 0; w < worker_count_; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (config_.heartbeat_ms > 0) {
    HeartbeatEmitter::Config hb;
    hb.period_ms = config_.heartbeat_ms;
    hb.sample = [this] { return sample_heartbeat(); };
    hb.sink = config_.heartbeat_sink;
    heartbeat_ = std::make_unique<HeartbeatEmitter>(std::move(hb));
    heartbeat_->start();
  }
  started_ = true;
  return true;
}

int MeshbcastService::port() const noexcept { return listener_.port(); }

std::string MeshbcastService::address() const { return address_; }

void MeshbcastService::wait(const std::atomic<bool>* external_stop) {
  while (!shutdown_requested_.load(std::memory_order_acquire)) {
    if (external_stop != nullptr &&
        external_stop->load(std::memory_order_acquire)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  shutdown();
}

void MeshbcastService::shutdown() {
  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!started_ || stopped_) return;
  // Order matters.  (1) Stop admitting: the accept loop exits on the
  // drain flag and the queue closes -- its backlog still drains, so
  // every admitted request gets its response.  (2) Join the workers;
  // only THEN (3) half-close the connections, so a worker is never
  // racing a teardown on the socket it is responding on.
  draining_.store(true, std::memory_order_release);
  accept_thread_.join();
  listener_.close();
  queue_->close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  {
    const std::lock_guard<std::mutex> conn_lock(connections_mutex_);
    for (const std::shared_ptr<Connection>& conn : connections_) {
      conn->sock.shutdown_both();
    }
  }
  // No lock while joining: the handlers never touch the list, and the
  // accept thread (the only other mutator) is already gone.
  for (const std::shared_ptr<Connection>& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  connections_.clear();
  if (heartbeat_) heartbeat_->stop();
  // Every admitted request has executed; make its journal record
  // durable before reporting the drain complete.
  if (config_.journal != nullptr) config_.journal->flush();
  stopped_ = true;
}

MeshbcastService::Counters MeshbcastService::counters() const noexcept {
  Counters c;
  c.connections = connections_total_.load(std::memory_order_relaxed);
  c.requests = requests_.load(std::memory_order_relaxed);
  c.served = served_.load(std::memory_order_relaxed);
  c.errors = errors_.load(std::memory_order_relaxed);
  c.sheds = sheds_.load(std::memory_order_relaxed);
  c.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  return c;
}

HeartbeatRecord MeshbcastService::sample_heartbeat() {
  HeartbeatRecord beat;
  beat.emitted = served_.load(std::memory_order_relaxed);
  beat.jobs_total = requests_.load(std::memory_order_relaxed);
  beat.errors = errors_.load(std::memory_order_relaxed);
  beat.queue_depth = queue_ ? queue_->size() : 0;
  beat.workers_busy = busy_.load(std::memory_order_relaxed);
  return beat;
}

void MeshbcastService::accept_loop() {
  while (!draining_.load(std::memory_order_acquire)) {
    Socket sock;
    if (listener_.accept(sock, 100)) {
      connections_total_.fetch_add(1, std::memory_order_relaxed);
      if (m_.connections != nullptr) m_.connections->increment();
      auto conn = std::make_shared<Connection>();
      conn->sock = std::move(sock);
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(conn);
      conn->thread =
          std::thread([this, conn] { handle_connection(conn); });
    }
    reap_finished();
  }
}

void MeshbcastService::reap_finished() {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void MeshbcastService::handle_connection(
    const std::shared_ptr<Connection>& conn) {
  connections_open_.fetch_add(1, std::memory_order_relaxed);
  if (m_.connections_open != nullptr) {
    m_.connections_open->set(
        static_cast<double>(connections_open_.load(std::memory_order_relaxed)));
  }
  std::string payload;
  bool alive = true;
  while (alive) {
    const FrameStatus status =
        read_frame(conn->sock, payload, config_.max_request_bytes);
    if (status == FrameStatus::kClosed) break;
    if (status == FrameStatus::kOversized) {
      // The length prefix was read but the payload was not: the stream
      // cannot be resynchronized.  Answer, then drop the connection.
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      if (m_.bad_frames != nullptr) m_.bad_frames->increment();
      (void)write_frame(
          conn->sock,
          rpc_error_json(false, 0, rpc_code::kOversized,
                         "frame exceeds max_request_bytes (" +
                             std::to_string(config_.max_request_bytes) +
                             ")"));
      break;
    }
    if (status != FrameStatus::kOk) {  // truncated or transport error
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      if (m_.bad_frames != nullptr) m_.bad_frames->increment();
      break;
    }
    // Admission timing starts when the frame is fully read: everything
    // from here to the enqueue (or inline reply) is the daemon's doing,
    // not the client's.
    const auto frame_received = std::chrono::steady_clock::now();
    RpcRequest req;
    RpcError error;
    if (!parse_rpc_request(payload, req, error)) {
      // No request id: the frame never became a request.
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (m_.errors != nullptr) m_.errors->increment();
      alive = write_frame(conn->sock, rpc_error_json(req.has_id, req.id,
                                                     error.code,
                                                     error.message));
      continue;
    }
    req.seq = request_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Spans the handler finishes from here on (admission, inline
    // replies) carry the request id.
    RequestTagScope tag_scope(req.seq);
    // Inline lane: liveness probes and the drain trigger never sit
    // behind the admission queue -- a saturated service must still
    // answer health checks and accept its own shutdown.
    if (req.type == RpcType::kHealth) {
      alive = write_frame(conn->sock, health_json(req));
      continue;
    }
    if (req.type == RpcType::kMetrics) {
      alive = write_frame(conn->sock, metrics_json(req));
      continue;
    }
    if (req.type == RpcType::kShutdown) {
      JsonWriter w = rpc_response_begin(req);
      w.member("status", "draining").end_object();
      alive = write_frame(conn->sock, std::move(w).str());
      // A handler cannot join itself: flag the request and let wait()
      // perform the actual drain from the main thread.
      shutdown_requested_.store(true, std::memory_order_release);
      continue;
    }
    // Admission lane.
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (m_.requests != nullptr) m_.requests->increment();
    const bool has_id = req.has_id;
    const std::uint64_t id = req.id;
    const std::uint64_t seq = req.seq;
    const RpcType req_type = req.type;
    Pending pending;
    Work work;
    work.conn = conn;
    work.req = std::move(req);
    work.pending = &pending;
    work.ts_micros = wall_micros();
    work.admitted = std::chrono::steady_clock::now();
    work.admission_ms = std::chrono::duration<double, std::milli>(
                            work.admitted - frame_received)
                            .count();
    const double admission_ms = work.admission_ms;
    const bool pushed = queue_->try_push(std::move(work));
    Timeline& timeline = Timeline::instance();
    if (timeline.enabled()) {
      timeline.record_wait(
          "service.admission",
          static_cast<std::uint64_t>(ms_since(frame_received) * 1e6), seq);
    }
    if (!pushed) {
      const bool draining = draining_.load(std::memory_order_acquire);
      if (!draining) {
        sheds_.fetch_add(1, std::memory_order_relaxed);
        if (m_.sheds != nullptr) m_.sheds->increment();
      }
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (m_.errors != nullptr) m_.errors->increment();
      // A refused request still gets a journal record: sheds are part
      // of "what did I serve", and the drain flag marks refusals that
      // were the drain's fault rather than load's.
      JournalRecord record;
      record.seq = seq;
      record.client_id = id;
      record.ts_micros = wall_micros();
      record.admission_ms = admission_ms;
      record.total_ms = admission_ms;
      record.method = journal_method_for(req_type);
      record.outcome =
          draining ? JournalOutcome::kError : JournalOutcome::kShed;
      record.flags = static_cast<std::uint8_t>(
          (has_id ? kJournalHasClientId : 0) |
          (draining ? kJournalDrainRefused : 0));
      journal_append(record);
      if (slo_) slo_->record(admission_ms, record.outcome);
      alive = write_frame(
          conn->sock,
          rpc_error_json(has_id, id,
                         draining ? rpc_code::kShuttingDown
                                  : rpc_code::kOverloaded,
                         draining ? "service is draining"
                                  : "admission queue is full; retry",
                         seq));
      continue;
    }
    if (m_.queue_depth != nullptr) {
      m_.queue_depth->set(static_cast<double>(queue_->size()));
    }
    std::unique_lock<std::mutex> wait_lock(pending.mutex);
    pending.cv.wait(wait_lock, [&] { return pending.done; });
    alive = pending.write_ok;
  }
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
  if (m_.connections_open != nullptr) {
    m_.connections_open->set(
        static_cast<double>(connections_open_.load(std::memory_order_relaxed)));
  }
  conn->finished.store(true, std::memory_order_release);
}

void MeshbcastService::worker_loop() {
  Simulator sim;
  while (std::optional<Work> work = queue_->pop()) {
    busy_.fetch_add(1, std::memory_order_relaxed);
    if (m_.workers_busy != nullptr) {
      m_.workers_busy->set(
          static_cast<double>(busy_.load(std::memory_order_relaxed)));
    }
    if (m_.queue_depth != nullptr) {
      m_.queue_depth->set(static_cast<double>(queue_->size()));
    }
    if (config_.before_execute) config_.before_execute();
    execute(*work, sim);
    busy_.fetch_sub(1, std::memory_order_relaxed);
    if (m_.workers_busy != nullptr) {
      m_.workers_busy->set(
          static_cast<double>(busy_.load(std::memory_order_relaxed)));
    }
    {
      const std::lock_guard<std::mutex> lock(work->pending->mutex);
      work->pending->done = true;
    }
    work->pending->cv.notify_one();
  }
}

void MeshbcastService::execute(Work& work, Simulator& sim) {
  // Everything this worker records for the request -- the queue-wait
  // span, the stage spans inside respond_*, the emission span -- carries
  // the request id.
  RequestTagScope tag_scope(work.req.seq);
  const double queue_ms = ms_since(work.admitted);
  Timeline& timeline = Timeline::instance();
  if (timeline.enabled()) {
    timeline.record_wait("service.queue_wait",
                         static_cast<std::uint64_t>(queue_ms * 1e6),
                         work.req.seq);
  }
  WSN_SPAN("service.request");
  const auto start = std::chrono::steady_clock::now();
  bool ok = true;
  StageTrace trace;
  Histogram* hist = nullptr;
  switch (work.req.type) {
    case RpcType::kPlan: {
      std::string response;
      {
        WSN_SPAN("service.plan");
        const auto t = std::chrono::steady_clock::now();
        response = respond_plan(work.req, ok, trace);
        trace.exec_ms = ms_since(t);
      }
      {
        WSN_SPAN("service.emit");
        const auto t = std::chrono::steady_clock::now();
        work.pending->write_ok = write_frame(work.conn->sock, response);
        trace.emit_ms = ms_since(t);
      }
      hist = m_.plan_ms;
      break;
    }
    case RpcType::kSimulate: {
      std::string response;
      {
        WSN_SPAN("service.simulate");
        const auto t = std::chrono::steady_clock::now();
        response = respond_simulate(work.req, sim, ok, trace);
        trace.exec_ms = ms_since(t);
      }
      {
        WSN_SPAN("service.emit");
        const auto t = std::chrono::steady_clock::now();
        work.pending->write_ok = write_frame(work.conn->sock, response);
        trace.emit_ms = ms_since(t);
      }
      hist = m_.simulate_ms;
      break;
    }
    case RpcType::kScenario: {
      WSN_SPAN("service.scenario");
      const auto t = std::chrono::steady_clock::now();
      respond_scenario(work, ok, trace);
      // The stream interleaves compute and emission; the handler
      // accumulated the emission share, the rest is execution.
      trace.exec_ms = std::max(0.0, ms_since(t) - trace.emit_ms);
      hist = m_.scenario_ms;
      break;
    }
    default:
      // Inline types are never admitted.
      WSN_ASSERT(false);
  }
  const double elapsed = ms_since(start);
  if (m_.request_ms != nullptr) m_.request_ms->observe(elapsed);
  if (hist != nullptr) hist->observe(elapsed);
  if (ok) {
    served_.fetch_add(1, std::memory_order_relaxed);
    if (m_.served != nullptr) m_.served->increment();
  } else {
    errors_.fetch_add(1, std::memory_order_relaxed);
    if (m_.errors != nullptr) m_.errors->increment();
  }
  const double total_ms =
      work.admission_ms + queue_ms + trace.exec_ms + trace.emit_ms;
  const JournalOutcome outcome =
      ok ? JournalOutcome::kOk : JournalOutcome::kError;
  if (config_.journal != nullptr) {
    JournalRecord record;
    record.seq = work.req.seq;
    record.client_id = work.req.id;
    record.ts_micros = work.ts_micros;
    record.fp_hi = trace.fp_hi;
    record.fp_lo = trace.fp_lo;
    record.admission_ms = work.admission_ms;
    record.queue_ms = queue_ms;
    record.exec_ms = trace.exec_ms;
    record.emit_ms = trace.emit_ms;
    record.total_ms = total_ms;
    record.method = journal_method_for(work.req.type);
    record.outcome = outcome;
    record.flags =
        static_cast<std::uint8_t>(work.req.has_id ? kJournalHasClientId : 0);
    journal_append(record);
  }
  if (slo_) slo_->record(total_ms, outcome);
}

void MeshbcastService::journal_append(const JournalRecord& record) {
  if (config_.journal == nullptr) return;
  config_.journal->append(record);
  // Lifetime gauges refresh lazily: the metrics scrape and health paths
  // pull them, so the per-request cost stays one buffered append.
}

void MeshbcastService::update_lifetime_gauges() {
  if (config_.journal == nullptr || m_.lifetime_requests == nullptr) return;
  const JournalLifetime life = config_.journal->lifetime();
  m_.lifetime_requests->set(static_cast<double>(life.records));
  m_.lifetime_served->set(static_cast<double>(life.served));
  m_.lifetime_errors->set(static_cast<double>(life.errors));
  m_.lifetime_sheds->set(static_cast<double>(life.sheds));
}

const MeshbcastService::TopoEntry* MeshbcastService::topology_for(
    const PlanRpc& plan, std::string& error) {
  int m = plan.m, n = plan.n, l = plan.l;
  if (m == 0) {  // paper default size for the family
    if (plan.family == "3D-6") {
      m = 8;
      n = 8;
      l = 8;
    } else {
      m = 32;
      n = 16;
      l = 1;
    }
  }
  const std::size_t nodes = static_cast<std::size_t>(m) *
                            static_cast<std::size_t>(n) *
                            static_cast<std::size_t>(l);
  if (nodes == 0 || nodes > config_.max_nodes) {
    error = "topology size " + std::to_string(nodes) +
            " exceeds max_nodes (" + std::to_string(config_.max_nodes) + ")";
    return nullptr;
  }
  std::ostringstream key;
  key << plan.family << ':' << m << 'x' << n << 'x' << l << '@'
      << json_number(plan.spacing);
  const std::lock_guard<std::mutex> lock(topologies_mutex_);
  std::unique_ptr<TopoEntry>& slot = topologies_[key.str()];
  if (!slot) {
    auto entry = std::make_unique<TopoEntry>();
    entry->topo = make_mesh(plan.family, m, n, l, plan.spacing);
    entry->digest = digest_topology(*entry->topo);
    slot = std::move(entry);
  }
  return slot.get();
}

std::string MeshbcastService::respond_plan(const RpcRequest& req, bool& ok,
                                           StageTrace& trace) {
  const PlanRpc& plan = req.plan;
  if (!known_family(plan.family)) {
    ok = false;
    return rpc_error_json(req, rpc_code::kBadRequest,
                          "unknown family: " + plan.family);
  }
  std::string topo_error;
  const TopoEntry* entry = topology_for(plan, topo_error);
  if (entry == nullptr) {
    ok = false;
    return rpc_error_json(req, rpc_code::kBadRequest, topo_error);
  }
  const Topology& topo = *entry->topo;
  if (plan.source >= topo.num_nodes()) {
    ok = false;
    return rpc_error_json(
        req, rpc_code::kBadRequest,
        "source " + std::to_string(plan.source) + " out of range (" +
            std::to_string(topo.num_nodes()) + " nodes)");
  }
  const NodeId source = static_cast<NodeId>(plan.source);
  SimOptions options;
  options.packet_bits = plan.packet_bits;
  const PlanFingerprint fingerprint =
      fingerprint_plan_request(entry->digest, source, plan.protocol, options);
  trace.fp_hi = fingerprint.key.hi;
  trace.fp_lo = fingerprint.key.lo;
  const auto compile = [&](ResolveReport& report) {
    return plan.protocol == "paper"
               ? paper_plan(topo, source, options, &report)
               : CdsBroadcast{}.plan(topo, source);
  };
  std::string origin_text;
  std::size_t planned_tx = 0, repairs = 0, unrepaired = 0;
  if (config_.store != nullptr) {
    // Single-flight per fingerprint: the store itself lets concurrent
    // compiles race (harmless in a batch run, wasteful in a service).
    // Holding the keyed lock across fetch_or_compile means one compile
    // per key; the blocked requesters then hit the memory tier.
    const KeyedMutex::Guard flight = flights_.lock(fingerprint.hex());
    PlanStore::Origin origin = PlanStore::Origin::kCompiled;
    const std::shared_ptr<const StoredPlan> stored =
        config_.store->fetch_or_compile(topo, source, plan.protocol, options,
                                        compile, &origin);
    origin_text = std::string(to_string(origin));
    planned_tx = stored->plan.total_offsets();
    repairs = stored->report.repairs;
    unrepaired = stored->report.unrepaired;
  } else {
    ResolveReport report;
    const RelayPlan compiled = compile(report);
    origin_text = "uncached";
    planned_tx = compiled.planned_tx();
    repairs = report.repairs;
    unrepaired = report.unrepaired;
  }
  JsonWriter w = rpc_response_begin(req);
  w.member("family", plan.family)
      .member("protocol", plan.protocol)
      .member("nodes", static_cast<std::uint64_t>(topo.num_nodes()))
      .member("source", static_cast<std::uint64_t>(source))
      .member("origin", origin_text)
      .member("fingerprint", fingerprint.hex())
      .member("planned_tx", static_cast<std::uint64_t>(planned_tx))
      .member("repairs", static_cast<std::uint64_t>(repairs))
      .member("unrepaired", static_cast<std::uint64_t>(unrepaired))
      .end_object();
  return std::move(w).str();
}

std::string MeshbcastService::respond_simulate(const RpcRequest& req,
                                               Simulator& sim, bool& ok,
                                               StageTrace& trace) {
  ScenarioSpec spec;
  std::string error;
  if (!parse_scenario_spec(req.simulate.spec_doc, spec, error)) {
    ok = false;
    return rpc_error_json(req, rpc_code::kInvalidSpec, error);
  }
  JobMatrix matrix;
  if (!expand_jobs(std::move(spec), matrix, error)) {
    ok = false;
    return rpc_error_json(req, rpc_code::kInvalidSpec, error);
  }
  trace.fp_lo = matrix.fingerprint;
  if (matrix.jobs.size() != 1) {
    ok = false;
    return rpc_error_json(
        req, rpc_code::kBadRequest,
        "simulate expands to " + std::to_string(matrix.jobs.size()) +
            " jobs; use a scenario request for matrices");
  }
  for (const std::unique_ptr<Topology>& topo : matrix.topologies) {
    if (topo->num_nodes() > config_.max_nodes) {
      ok = false;
      return rpc_error_json(req, rpc_code::kBadRequest,
                            "topology exceeds max_nodes");
    }
  }
  const std::string record = run_scenario_job(
      matrix, matrix.jobs[0], sim, config_.store, req.simulate.audit);
  JsonWriter w = rpc_response_begin(req);
  w.key("record").raw(record).end_object();
  return std::move(w).str();
}

void MeshbcastService::respond_scenario(Work& work, bool& ok,
                                        StageTrace& trace) {
  const RpcRequest& req = work.req;
  ScenarioSpec spec;
  std::string error;
  if (!parse_scenario_spec(req.scenario.spec_doc, spec, error)) {
    ok = false;
    work.pending->write_ok = write_frame(
        work.conn->sock,
        rpc_error_json(req, rpc_code::kInvalidSpec, error));
    return;
  }
  JobMatrix matrix;
  if (!expand_jobs(std::move(spec), matrix, error)) {
    ok = false;
    work.pending->write_ok = write_frame(
        work.conn->sock,
        rpc_error_json(req, rpc_code::kInvalidSpec, error));
    return;
  }
  trace.fp_lo = matrix.fingerprint;
  for (const std::unique_ptr<Topology>& topo : matrix.topologies) {
    if (topo->num_nodes() > config_.max_nodes) {
      ok = false;
      work.pending->write_ok = write_frame(
          work.conn->sock,
          rpc_error_json(req, rpc_code::kBadRequest,
                         "topology exceeds max_nodes"));
      return;
    }
  }
  EngineConfig engine_config;
  const std::size_t requested =
      req.scenario.workers == 0 ? 1 : req.scenario.workers;
  engine_config.workers =
      std::min<std::size_t>(requested, config_.scenario_workers_cap);
  engine_config.store = config_.store;
  engine_config.metrics = config_.metrics;
  engine_config.audit = req.scenario.audit;
  // The service drain doubles as the engine's cancel signal: an
  // in-flight stream ends in a `cancelled` done frame instead of
  // holding the drain hostage.
  engine_config.cancel = &draining_;
  std::atomic<bool> write_failed{false};
  // Emission time accumulates across the stream's frames (records are
  // emitted by the engine's collector, not this thread), in integer
  // nanoseconds so the adds stay atomic.
  std::atomic<std::uint64_t> emit_ns{0};
  const auto timed_write = [&](const std::string& payload) {
    const auto t = std::chrono::steady_clock::now();
    const bool wrote = write_frame(work.conn->sock, payload);
    emit_ns.fetch_add(static_cast<std::uint64_t>(ms_since(t) * 1e6),
                      std::memory_order_relaxed);
    return wrote;
  };
  ScenarioEngine* engine_ptr = nullptr;
  engine_config.on_record = [&](std::size_t, const std::string& line) {
    if (write_failed.load(std::memory_order_relaxed)) return;
    if (!timed_write(line)) {
      // Client gone mid-stream: stop simulating for nobody.
      write_failed.store(true, std::memory_order_relaxed);
      if (engine_ptr != nullptr) engine_ptr->request_cancel();
    }
  };
  ScenarioEngine engine(matrix, engine_config);
  engine_ptr = &engine;
  JsonWriter begin = rpc_response_begin(req, "scenario.begin");
  begin.member("name", matrix.spec.name)
      .member("jobs", static_cast<std::uint64_t>(matrix.jobs.size()))
      .key("header")
      .raw(engine.header_line())
      .end_object();
  if (!timed_write(std::move(begin).str())) {
    ok = false;
    work.pending->write_ok = false;
    return;
  }
  const RunSummary summary = engine.run("");  // stream-only: no file
  ok = summary.ok && !write_failed.load(std::memory_order_relaxed);
  JsonWriter done;
  done.begin_object().member("type", "scenario.done");
  if (req.has_id) done.member("id", req.id);
  if (req.seq != 0) done.member("req", req.seq);
  done.member("ok", summary.ok)
      .member("cancelled", summary.cancelled)
      .member("jobs_total", static_cast<std::uint64_t>(summary.jobs_total))
      .member("emitted", static_cast<std::uint64_t>(summary.emitted))
      .member("errors", static_cast<std::uint64_t>(summary.errors));
  if (!summary.ok) done.member("error", summary.error);
  done.end_object();
  const bool wrote = timed_write(std::move(done).str());
  work.pending->write_ok =
      wrote && !write_failed.load(std::memory_order_relaxed);
  trace.emit_ms =
      static_cast<double>(emit_ns.load(std::memory_order_relaxed)) / 1e6;
}

std::string MeshbcastService::health_json(const RpcRequest& req) {
  JsonWriter w = rpc_response_begin(req);
  const Counters c = counters();
  w.member("status", draining_.load(std::memory_order_acquire)
                         ? "draining"
                         : (shutdown_requested() ? "drain_pending"
                                                 : "serving"))
      .member("uptime_ms", ms_since(started_at_))
      .member("workers", static_cast<std::uint64_t>(worker_count_))
      .member("workers_busy",
              static_cast<std::uint64_t>(busy_.load(std::memory_order_relaxed)))
      .member("queue_depth",
              static_cast<std::uint64_t>(queue_ ? queue_->size() : 0))
      .member("queue_capacity",
              static_cast<std::uint64_t>(queue_ ? queue_->capacity() : 0))
      .member("connections", static_cast<std::uint64_t>(connections_open_.load(
                                 std::memory_order_relaxed)))
      .member("requests", c.requests)
      .member("served", c.served)
      .member("errors", c.errors)
      .member("sheds", c.sheds)
      .member("bad_frames", c.bad_frames);
  if (config_.journal != nullptr) {
    // Journal-backed lifetime view: the replayed prefix plus this
    // process -- what the daemon has served across restarts.
    const JournalLifetime life = config_.journal->lifetime();
    w.member("lifetime_requests", life.records)
        .member("lifetime_served", life.served)
        .member("lifetime_errors", life.errors)
        .member("lifetime_sheds", life.sheds);
  }
  w.end_object();
  return std::move(w).str();
}

std::string MeshbcastService::metrics_json(const RpcRequest& req) {
  // A scrape must never be staler than the last request: force the SLO
  // fold past its throttle and refresh the lifetime gauges.
  if (slo_) slo_->refresh(true);
  update_lifetime_gauges();
  JsonWriter w = rpc_response_begin(req);
  if (config_.metrics != nullptr) {
    std::ostringstream doc;
    write_metrics_json(doc, config_.metrics->scrape());
    w.key("metrics").raw(doc.str());
  } else {
    w.key("metrics").null();
  }
  w.end_object();
  return std::move(w).str();
}

}  // namespace wsn
