#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/bounded_queue.h"
#include "common/socket.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "service/journal.h"
#include "service/rpc.h"
#include "service/single_flight.h"
#include "service/slo.h"
#include "store/fingerprint.h"
#include "store/plan_store.h"
#include "topology/topology.h"

/// meshbcastd's core: a long-running broadcast-planning service speaking
/// `meshbcast.rpc` v1 (service/rpc.h) over loopback TCP or a Unix-domain
/// socket.
///
/// Concurrency model -- three thread roles and one queue:
///
///   * one accept thread, polling the listener with a short timeout so
///     the drain flag is observed promptly;
///   * one handler thread per connection, which reads frames, answers
///     `health`/`metrics`/`shutdown` inline (observability and drain
///     must never sit behind a loaded queue), and admits `plan` /
///     `simulate` / `scenario` into the bounded queue -- `try_push`, so
///     a full queue sheds the request with a structured `overloaded`
///     error instead of queueing unboundedly or blocking the socket;
///   * `workers` executor threads popping the queue, running the request
///     and writing the response frames directly to the connection.
///
/// One request is in flight per connection: the handler blocks on the
/// request's completion latch before reading the next frame, which is
/// what makes "workers write to the socket" race-free without a write
/// lock, and gives clients pipelining-free, strictly ordered responses.
///
/// Graceful drain (`shutdown()`, triggered by SIGINT/SIGTERM via
/// obs/heartbeat.h's SignalDrain or by the `shutdown` RPC): stop
/// accepting, close the queue (the backlog still executes), join the
/// workers -- so every admitted request gets its response -- then
/// half-close the connections to unblock the handlers and join them.
/// In-flight `scenario` engines see the drain flag as their cancel
/// signal, so a million-job stream ends promptly in a `cancelled` done
/// frame rather than stalling the drain.
///
/// Concurrent cold `plan` requests for one fingerprint are serialized
/// through a KeyedMutex (service/single_flight.h): the store compiles
/// exactly once, the losers hit the memory tier.
///
/// Request-scoped observability: every successfully parsed frame gets a
/// unique server request id (`"req"` echoed in responses and errors).
/// Admitted-lane requests are timed per stage -- admission (frame read
/// to enqueue), queue wait, execution, emission -- with the stage spans
/// tagged by the id on the timeline (obs/timeline.h RequestTagScope), a
/// record appended to the request journal when one is configured, and
/// the total folded into the rolling SLO gauges (service/slo.h).  With
/// no journal and the timeline off, the extra cost per request is two
/// steady-clock reads.
namespace wsn {

class Simulator;

struct ServiceConfig {
  /// Non-empty: listen on this Unix-domain socket path (wins over TCP).
  std::string unix_path;
  /// Loopback TCP port when `unix_path` is empty; 0 = ephemeral (read it
  /// back via `port()`).
  int tcp_port = 0;
  /// Executor threads; 0 resolves to 2.
  std::size_t workers = 0;
  /// Admission queue capacity; 0 = max(2 x workers, 8).  Beyond it,
  /// requests shed with `overloaded`.
  std::size_t queue_capacity = 0;
  /// Frame-size cap (the request-size knob): a declared length above
  /// this is answered with `oversized` and the connection dropped.
  std::size_t max_request_bytes = 1u << 20;
  /// Topology-size cap for plan/simulate/scenario requests.
  std::size_t max_nodes = 1u << 20;
  /// Cap on the per-request scenario engine pool.
  std::size_t scenario_workers_cap = 8;
  /// Shared plan cache (nullable: every plan compiles fresh).
  PlanStore* store = nullptr;
  /// Metrics mirror (nullable): service.* counters/gauges/histograms,
  /// scraped live by the `metrics` RPC.
  MetricsRegistry* metrics = nullptr;
  /// Persistent request journal (nullable: no persistence).  Must be
  /// open()ed by the caller, who keeps ownership; the service appends
  /// one record per admitted-lane request (sheds included), seeds its
  /// request-id counter from the replayed max_seq, and publishes the
  /// journal's lifetime totals as service.lifetime_* gauges.
  RequestJournal* journal = nullptr;
  /// Rolling SLO window (requests) behind the service.slo.* gauges;
  /// only meaningful with a metrics registry.
  std::size_t slo_window = 2048;
  /// Time-based heartbeat period (0 = off), via obs/heartbeat.h.
  std::size_t heartbeat_ms = 0;
  /// Heartbeat sink; empty = stderr.
  std::function<void(const HeartbeatRecord&)> heartbeat_sink;
  /// Test hook: runs on the worker thread just before a request
  /// executes (nullable).  The determinism tests use it to hold
  /// requests at a barrier and release them at once.
  std::function<void()> before_execute;
};

class MeshbcastService {
 public:
  explicit MeshbcastService(ServiceConfig config);
  ~MeshbcastService();
  MeshbcastService(const MeshbcastService&) = delete;
  MeshbcastService& operator=(const MeshbcastService&) = delete;

  /// Binds, spawns the pool and the accept thread.  False + `error` on
  /// bind failure.  Call once.
  [[nodiscard]] bool start(std::string& error);

  /// Bound TCP port (-1 when listening on a Unix socket).
  [[nodiscard]] int port() const noexcept;
  /// "tcp:127.0.0.1:<port>" or "unix:<path>" -- RpcClient::connect's
  /// address syntax.
  [[nodiscard]] std::string address() const;

  /// Blocks until the `shutdown` RPC arrives or `external_stop` (e.g.
  /// SignalDrain::flag()) goes true, then performs the graceful drain.
  void wait(const std::atomic<bool>* external_stop = nullptr);

  /// Graceful drain as described above.  Idempotent; must not be called
  /// from a handler or worker thread (they cannot join themselves) --
  /// the `shutdown` RPC therefore only sets a flag that `wait()`
  /// observes.
  void shutdown();

  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  /// Lifetime totals, independent of any metrics registry.
  struct Counters {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;  // admitted-lane requests (plan/sim/scn)
    std::uint64_t served = 0;    // executed with an ok response
    std::uint64_t errors = 0;    // structured error responses
    std::uint64_t sheds = 0;     // rejected by admission control
    std::uint64_t bad_frames = 0;  // oversized / truncated / transport
  };
  [[nodiscard]] Counters counters() const noexcept;

 private:
  struct Connection {
    Socket sock;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  /// Per-request completion latch; lives on the handler's stack (the
  /// handler always outlives the wait -- every admitted request is
  /// executed, because drain closes the queue instead of cancelling it).
  struct Pending {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool write_ok = true;
  };

  struct Work {
    std::shared_ptr<Connection> conn;
    RpcRequest req;
    Pending* pending = nullptr;
    std::chrono::steady_clock::time_point admitted;
    /// Wall clock at admission (journal timestamp).
    std::uint64_t ts_micros = 0;
    /// Frame read -> enqueue, measured by the handler.
    double admission_ms = 0.0;
  };

  /// Per-request execution trace filled by the respond_* handlers and
  /// folded into the journal record.
  struct StageTrace {
    double exec_ms = 0.0;
    double emit_ms = 0.0;
    std::uint64_t fp_hi = 0;
    std::uint64_t fp_lo = 0;
  };

  /// Topologies built once per distinct (family, dims, spacing) and kept
  /// for the service lifetime: stable addresses are what lets the plan
  /// store memoize its O(links) adjacency digest, and the cached
  /// TopologyDigest makes the response fingerprint O(1) per request.
  struct TopoEntry {
    std::unique_ptr<Topology> topo;
    TopologyDigest digest;
  };

  struct MetricHandles {
    Counter* requests = nullptr;
    Counter* served = nullptr;
    Counter* errors = nullptr;
    Counter* sheds = nullptr;
    Counter* bad_frames = nullptr;
    Counter* connections = nullptr;
    Gauge* queue_depth = nullptr;
    Gauge* workers_busy = nullptr;
    Gauge* connections_open = nullptr;
    Histogram* request_ms = nullptr;
    Histogram* plan_ms = nullptr;
    Histogram* simulate_ms = nullptr;
    Histogram* scenario_ms = nullptr;
    Gauge* lifetime_requests = nullptr;
    Gauge* lifetime_served = nullptr;
    Gauge* lifetime_errors = nullptr;
    Gauge* lifetime_sheds = nullptr;
  };

  void accept_loop();
  void reap_finished();
  void handle_connection(const std::shared_ptr<Connection>& conn);
  void worker_loop();
  void execute(Work& work, Simulator& sim);
  [[nodiscard]] std::string respond_plan(const RpcRequest& req, bool& ok,
                                         StageTrace& trace);
  [[nodiscard]] std::string respond_simulate(const RpcRequest& req,
                                             Simulator& sim, bool& ok,
                                             StageTrace& trace);
  void respond_scenario(Work& work, bool& ok, StageTrace& trace);
  void journal_append(const JournalRecord& record);
  void update_lifetime_gauges();
  [[nodiscard]] std::string health_json(const RpcRequest& req);
  [[nodiscard]] std::string metrics_json(const RpcRequest& req);
  [[nodiscard]] const TopoEntry* topology_for(const PlanRpc& plan,
                                              std::string& error);
  [[nodiscard]] HeartbeatRecord sample_heartbeat();

  ServiceConfig config_;
  std::size_t worker_count_ = 0;
  Listener listener_;
  std::string address_;
  std::unique_ptr<BoundedQueue<Work>> queue_;
  std::vector<std::thread> workers_;
  std::thread accept_thread_;
  std::unique_ptr<HeartbeatEmitter> heartbeat_;
  KeyedMutex flights_;

  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  std::mutex topologies_mutex_;
  std::unordered_map<std::string, std::unique_ptr<TopoEntry>> topologies_;

  std::mutex lifecycle_mutex_;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::chrono::steady_clock::time_point started_at_;

  MetricHandles m_;
  std::unique_ptr<SloTracker> slo_;
  /// Unique server request ids; seeded past the journal's replayed
  /// max_seq so ids stay unique across restarts of one journal.
  std::atomic<std::uint64_t> request_seq_{0};
  std::atomic<std::uint64_t> connections_total_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> sheds_{0};
  std::atomic<std::uint64_t> bad_frames_{0};
  std::atomic<std::size_t> busy_{0};
  std::atomic<std::size_t> connections_open_{0};
};

}  // namespace wsn
