#include "service/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>

#include "store/serialize.h"

namespace wsn {

namespace {

std::uint64_t get_u64(const char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

double get_f64(const char* p) noexcept {
  const std::uint64_t bits = get_u64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

bool write_all(int fd, const char* data, std::size_t size) noexcept {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

std::string header_bytes() {
  std::string out(kJournalMagic);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((kJournalVersion >> (8 * i)) & 0xff));
  }
  out.append(4, '\0');
  return out;
}

}  // namespace

std::string_view to_string(JournalMethod method) noexcept {
  switch (method) {
    case JournalMethod::kPlan: return "plan";
    case JournalMethod::kSimulate: return "simulate";
    case JournalMethod::kScenario: return "scenario";
  }
  return "unknown";
}

std::string_view to_string(JournalOutcome outcome) noexcept {
  switch (outcome) {
    case JournalOutcome::kOk: return "ok";
    case JournalOutcome::kError: return "error";
    case JournalOutcome::kShed: return "shed";
  }
  return "unknown";
}

bool parse_journal_method(std::string_view text, JournalMethod& out) noexcept {
  if (text == "plan") { out = JournalMethod::kPlan; return true; }
  if (text == "simulate") { out = JournalMethod::kSimulate; return true; }
  if (text == "scenario") { out = JournalMethod::kScenario; return true; }
  return false;
}

bool parse_journal_outcome(std::string_view text,
                           JournalOutcome& out) noexcept {
  if (text == "ok") { out = JournalOutcome::kOk; return true; }
  if (text == "error") { out = JournalOutcome::kError; return true; }
  if (text == "shed") { out = JournalOutcome::kShed; return true; }
  return false;
}

void encode_journal_record_to(const JournalRecord& record,
                              char* out) noexcept {
  char* p = out;
  const auto emit_u64 = [&p](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) *p++ = static_cast<char>((v >> (8 * i)) & 0xff);
  };
  const auto emit_f64 = [&emit_u64](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    emit_u64(bits);
  };
  emit_u64(record.seq);
  emit_u64(record.client_id);
  emit_u64(record.ts_micros);
  emit_u64(record.fp_hi);
  emit_u64(record.fp_lo);
  emit_f64(record.admission_ms);
  emit_f64(record.queue_ms);
  emit_f64(record.exec_ms);
  emit_f64(record.emit_ms);
  emit_f64(record.total_ms);
  *p++ = static_cast<char>(record.method);
  *p++ = static_cast<char>(record.outcome);
  *p++ = static_cast<char>(record.flags);
  for (int i = 0; i < 5; ++i) *p++ = '\0';
  emit_u64(fnv1a64(std::string_view(out, kJournalRecordSize - 8)));
}

std::string encode_journal_record(const JournalRecord& record) {
  char bytes[kJournalRecordSize];
  encode_journal_record_to(record, bytes);
  return std::string(bytes, kJournalRecordSize);
}

bool decode_journal_record(std::string_view bytes,
                           JournalRecord& out) noexcept {
  if (bytes.size() != kJournalRecordSize) return false;
  const std::size_t body = kJournalRecordSize - 8;
  if (fnv1a64(bytes.substr(0, body)) != get_u64(bytes.data() + body)) {
    return false;
  }
  const char* p = bytes.data();
  out.seq = get_u64(p);
  out.client_id = get_u64(p + 8);
  out.ts_micros = get_u64(p + 16);
  out.fp_hi = get_u64(p + 24);
  out.fp_lo = get_u64(p + 32);
  out.admission_ms = get_f64(p + 40);
  out.queue_ms = get_f64(p + 48);
  out.exec_ms = get_f64(p + 56);
  out.emit_ms = get_f64(p + 64);
  out.total_ms = get_f64(p + 72);
  const auto method = static_cast<std::uint8_t>(p[80]);
  const auto outcome = static_cast<std::uint8_t>(p[81]);
  if (method > static_cast<std::uint8_t>(JournalMethod::kScenario)) {
    return false;
  }
  if (outcome > static_cast<std::uint8_t>(JournalOutcome::kShed)) {
    return false;
  }
  out.method = static_cast<JournalMethod>(method);
  out.outcome = static_cast<JournalOutcome>(outcome);
  out.flags = static_cast<std::uint8_t>(p[82]);
  return true;
}

RequestJournal::~RequestJournal() { close(); }

bool RequestJournal::open(const Config& config, std::string& error) {
  if (fd_ >= 0) {
    error = "journal already open";
    return false;
  }
  config_ = config;
  fd_ = ::open(config.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    error = config.path + ": " + std::strerror(errno);
    return false;
  }

  struct stat st {};
  if (::fstat(fd_, &st) != 0) {
    error = config.path + ": fstat: " + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }

  replay_ = JournalReplay{};
  const std::string header = header_bytes();
  if (st.st_size == 0) {
    // Fresh journal: stamp the header durably before any record.
    if (!write_all(fd_, header.data(), header.size()) || ::fsync(fd_) != 0) {
      error = config.path + ": header write: " + std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      return false;
    }
  } else {
    // Existing journal: validate the header, replay valid records, and
    // truncate at the first record that is short or fails its checksum.
    char head[kJournalHeaderSize];
    const ssize_t n = ::pread(fd_, head, sizeof head, 0);
    if (n != static_cast<ssize_t>(kJournalHeaderSize) ||
        std::memcmp(head, header.data(), kJournalHeaderSize) != 0) {
      error = config.path + ": not a WSNJRNL1 journal";
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    off_t offset = static_cast<off_t>(kJournalHeaderSize);
    char buf[kJournalRecordSize];
    while (true) {
      const ssize_t got = ::pread(fd_, buf, sizeof buf, offset);
      if (got <= 0) break;
      JournalRecord record;
      if (got != static_cast<ssize_t>(kJournalRecordSize) ||
          !decode_journal_record(std::string_view(buf, sizeof buf), record)) {
        break;
      }
      replay_.records += 1;
      replay_.max_seq = std::max(replay_.max_seq, record.seq);
      switch (record.outcome) {
        case JournalOutcome::kOk: replay_.served += 1; break;
        case JournalOutcome::kError: replay_.errors += 1; break;
        case JournalOutcome::kShed: replay_.sheds += 1; break;
      }
      offset += static_cast<off_t>(kJournalRecordSize);
    }
    if (offset < st.st_size) {
      replay_.truncated_bytes =
          static_cast<std::uint64_t>(st.st_size - offset);
      if (::ftruncate(fd_, offset) != 0 || ::fsync(fd_) != 0) {
        error = config.path + ": truncate: " + std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        return false;
      }
    }
    if (::lseek(fd_, 0, SEEK_END) < 0) {
      error = config.path + ": seek: " + std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      return false;
    }
  }

  total_records_.store(replay_.records, std::memory_order_relaxed);
  total_served_.store(replay_.served, std::memory_order_relaxed);
  total_errors_.store(replay_.errors, std::memory_order_relaxed);
  total_sheds_.store(replay_.sheds, std::memory_order_relaxed);

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = false;
    pending_.clear();
    pending_records_ = 0;
  }
  flusher_ = std::thread([this] { flusher_main(); });
  return true;
}

void RequestJournal::append(const JournalRecord& record) {
  if (fd_ < 0) return;
  // Encoding happens outside the lock, into a stack buffer: the hot
  // path (one per served request) must not heap-allocate.
  char bytes[kJournalRecordSize];
  encode_journal_record_to(record, bytes);
  bool wake = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    pending_.append(bytes, kJournalRecordSize);
    pending_records_ += 1;
    // Notify only on the crossing: past the threshold the flusher is
    // already awake (or about to be), and a futex wake per append at
    // tens of thousands of requests per second is pure overhead.
    wake = pending_records_ == config_.flush_batch;
  }
  total_records_.fetch_add(1, std::memory_order_relaxed);
  switch (record.outcome) {
    case JournalOutcome::kOk:
      total_served_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JournalOutcome::kError:
      total_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    case JournalOutcome::kShed:
      total_sheds_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (wake) cv_.notify_one();
}

void RequestJournal::write_locked(std::string batch) {
  if (batch.empty() || fd_ < 0) return;
  const std::lock_guard<std::mutex> lock(io_mutex_);
  // A failed write leaves the tail short or torn; the next open()
  // truncates it, so there is nothing useful to do here but drop.
  if (write_all(fd_, batch.data(), batch.size())) {
    ::fsync(fd_);
  }
}

void RequestJournal::flush() {
  std::string batch;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    batch.swap(pending_);
    pending_records_ = 0;
  }
  write_locked(std::move(batch));
}

void RequestJournal::flusher_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(config_.flush_interval_ms),
                 [this] {
                   return stop_ || pending_records_ >= config_.flush_batch;
                 });
    std::string batch;
    batch.swap(pending_);
    pending_records_ = 0;
    lock.unlock();
    write_locked(std::move(batch));
    lock.lock();
  }
}

void RequestJournal::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0 && !flusher_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_one();
  if (flusher_.joinable()) flusher_.join();
  flush();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

JournalLifetime RequestJournal::lifetime() const noexcept {
  JournalLifetime out;
  out.records = total_records_.load(std::memory_order_relaxed);
  out.served = total_served_.load(std::memory_order_relaxed);
  out.errors = total_errors_.load(std::memory_order_relaxed);
  out.sheds = total_sheds_.load(std::memory_order_relaxed);
  return out;
}

bool read_journal_file(const std::string& path, JournalReadResult& out,
                       std::string& error) {
  out.records.clear();
  out.torn_bytes = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = path + ": cannot open";
    return false;
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  const std::string header = header_bytes();
  if (contents.size() < kJournalHeaderSize ||
      contents.compare(0, kJournalHeaderSize, header) != 0) {
    error = path + ": not a WSNJRNL1 journal";
    return false;
  }
  std::size_t offset = kJournalHeaderSize;
  while (offset + kJournalRecordSize <= contents.size()) {
    JournalRecord record;
    if (!decode_journal_record(
            std::string_view(contents).substr(offset, kJournalRecordSize),
            record)) {
      break;
    }
    out.records.push_back(record);
    offset += kJournalRecordSize;
  }
  out.torn_bytes = contents.size() - offset;
  return true;
}

}  // namespace wsn
