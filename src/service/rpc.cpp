#include "service/rpc.h"

#include <utility>

#include "common/string_util.h"

namespace wsn {

namespace {

bool fail(RpcError& error, std::string_view code, std::string message) {
  error.code = std::string(code);
  error.message = std::move(message);
  return false;
}

bool bad(RpcError& error, std::string message) {
  return fail(error, rpc_code::kBadRequest, std::move(message));
}

/// Non-negative integer member, range-checked into `out`.
bool take_u64(const JsonValue& value, std::string_view key,
              std::uint64_t& out, RpcError& error) {
  std::uint64_t parsed = 0;
  if (!value.is_number() || !value.to_u64(parsed)) {
    return bad(error, std::string(key) +
                          " must be a non-negative integer (<= 2^53)");
  }
  out = parsed;
  return true;
}

bool parse_plan(const JsonValue& doc, PlanRpc& out, RpcError& error) {
  bool have_family = false;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "type" || key == "id") continue;
    if (key == "family") {
      if (!value.is_string()) return bad(error, "family must be a string");
      out.family = value.as_string();
      have_family = true;
    } else if (key == "dims") {
      if (!value.is_array()) {
        return bad(error, "dims must be [m,n] or [m,n,l]");
      }
      const JsonValue::Array& dims = value.as_array();
      if (dims.size() != 2 && dims.size() != 3) {
        return bad(error, "dims must have 2 or 3 elements");
      }
      int parsed[3] = {0, 0, 1};
      for (std::size_t i = 0; i < dims.size(); ++i) {
        std::uint64_t d = 0;
        if (!dims[i].is_number() || !dims[i].to_u64(d) || d == 0 ||
            d > (1u << 20)) {
          return bad(error, "dims elements must be positive integers");
        }
        parsed[i] = static_cast<int>(d);
      }
      out.m = parsed[0];
      out.n = parsed[1];
      out.l = parsed[2];
    } else if (key == "spacing") {
      if (!value.is_number() || value.as_number() <= 0.0) {
        return bad(error, "spacing must be a positive number");
      }
      out.spacing = value.as_number();
    } else if (key == "source") {
      if (!take_u64(value, "source", out.source, error)) return false;
    } else if (key == "protocol") {
      if (!value.is_string()) return bad(error, "protocol must be a string");
      out.protocol = value.as_string();
      if (out.protocol != "paper" && out.protocol != "cds") {
        return bad(error, "plan protocol must be \"paper\" or \"cds\" "
                          "(got \"" + out.protocol + "\")");
      }
    } else if (key == "packet_bits") {
      if (!take_u64(value, "packet_bits", out.packet_bits, error)) {
        return false;
      }
      if (out.packet_bits == 0 || out.packet_bits > (1u << 24)) {
        return bad(error, "packet_bits out of range");
      }
    } else {
      return bad(error, "unknown plan key: " + key);
    }
  }
  if (!have_family) return bad(error, "plan: family is required");
  return true;
}

bool parse_simulate(const JsonValue& doc, SimulateRpc& out, RpcError& error) {
  // Everything that is not envelope is a scenario-entry key; the spec
  // parser (strict about unknown keys, families, protocols) does the
  // real validation server-side.  Wrap into a one-entry spec document.
  JsonValue::Object entry;
  bool have_name = false;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "type" || key == "id") continue;
    if (key == "audit") {
      if (!value.is_bool()) return bad(error, "audit must be a boolean");
      out.audit = value.as_bool();
      continue;
    }
    if (key == "name") have_name = true;
    entry.emplace_back(key, value);
  }
  if (!have_name) {
    entry.emplace_back("name", JsonValue::make_string("simulate"));
  }
  JsonValue::Array scenarios;
  scenarios.push_back(JsonValue::make_object(std::move(entry)));
  JsonValue::Object spec;
  spec.emplace_back("name", JsonValue::make_string("rpc"));
  spec.emplace_back("scenarios", JsonValue::make_array(std::move(scenarios)));
  out.spec_doc = JsonValue::make_object(std::move(spec));
  return true;
}

bool parse_scenario(const JsonValue& doc, ScenarioRpc& out, RpcError& error) {
  bool have_spec = false;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "type" || key == "id") continue;
    if (key == "spec") {
      if (!value.is_object()) {
        return bad(error, "spec must be a JSON object");
      }
      out.spec_doc = value;
      have_spec = true;
    } else if (key == "workers") {
      if (!take_u64(value, "workers", out.workers, error)) return false;
      if (out.workers > 256) return bad(error, "workers out of range");
    } else if (key == "audit") {
      if (!value.is_bool()) return bad(error, "audit must be a boolean");
      out.audit = value.as_bool();
    } else {
      return bad(error, "unknown scenario key: " + key);
    }
  }
  if (!have_spec) return bad(error, "scenario: spec is required");
  return true;
}

}  // namespace

std::string_view to_string(RpcType type) noexcept {
  switch (type) {
    case RpcType::kHealth:
      return "health";
    case RpcType::kMetrics:
      return "metrics";
    case RpcType::kPlan:
      return "plan";
    case RpcType::kSimulate:
      return "simulate";
    case RpcType::kScenario:
      return "scenario";
    case RpcType::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

bool parse_rpc_request(std::string_view payload, RpcRequest& out,
                       RpcError& error) {
  out = RpcRequest{};
  // Encoding before syntax: malformed bytes must never reach a response
  // echo (or a log line).
  if (!is_valid_utf8(payload)) {
    return fail(error, rpc_code::kBadEncoding,
                "request payload is not valid UTF-8");
  }
  JsonValue doc;
  std::string json_error;
  if (!parse_json(payload, doc, &json_error)) {
    return fail(error, rpc_code::kBadJson, "bad JSON: " + json_error);
  }
  if (!doc.is_object()) {
    return bad(error, "request must be a JSON object");
  }
  // Envelope first, so even a failed parse can echo the id.
  if (const JsonValue* id = doc.find("id")) {
    if (!id->is_number() || !id->to_u64(out.id)) {
      return bad(error, "id must be a non-negative integer (<= 2^53)");
    }
    out.has_id = true;
  }
  const JsonValue* type = doc.find("type");
  if (type == nullptr || !type->is_string()) {
    return bad(error, "request needs a string \"type\"");
  }
  const std::string& name = type->as_string();
  if (name == "health") {
    out.type = RpcType::kHealth;
    return true;
  }
  if (name == "metrics") {
    out.type = RpcType::kMetrics;
    return true;
  }
  if (name == "shutdown") {
    out.type = RpcType::kShutdown;
    return true;
  }
  if (name == "plan") {
    out.type = RpcType::kPlan;
    return parse_plan(doc, out.plan, error);
  }
  if (name == "simulate") {
    out.type = RpcType::kSimulate;
    return parse_simulate(doc, out.simulate, error);
  }
  if (name == "scenario") {
    out.type = RpcType::kScenario;
    return parse_scenario(doc, out.scenario, error);
  }
  return bad(error, "unknown request type: " + name);
}

std::string rpc_error_json(bool has_id, std::uint64_t id,
                           std::string_view code, std::string_view message,
                           std::uint64_t seq) {
  JsonWriter w;
  w.begin_object().member("type", "error");
  if (has_id) w.member("id", id);
  if (seq != 0) w.member("req", seq);
  w.key("error")
      .begin_object()
      .member("code", code)
      .member("message", message)
      .end_object()
      .end_object();
  return std::move(w).str();
}

std::string rpc_error_json(const RpcRequest& req, std::string_view code,
                           std::string_view message) {
  return rpc_error_json(req.has_id, req.id, code, message, req.seq);
}

JsonWriter rpc_response_begin(const RpcRequest& req,
                              std::string_view frame_type) {
  JsonWriter w;
  w.begin_object().member("type", frame_type);
  if (req.has_id) w.member("id", req.id);
  if (req.seq != 0) w.member("req", req.seq);
  w.member("ok", true);
  return w;
}

}  // namespace wsn
