#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "service/journal.h"

/// Live SLO tracking for meshbcastd: a rolling window over the most
/// recent admitted-lane requests, folded into gauges the existing
/// `metrics` RPC scrapes --
///
///   service.slo.p50_ms / p95_ms / p99_ms   latency percentiles over the
///                                          windowed *served* requests
///   service.slo.error_rate                 errors / window
///   service.slo.shed_rate                  sheds / window
///   service.slo.window_requests            how many requests the gauges
///                                          currently summarize
///
/// Percentiles deliberately cover only kOk outcomes: a shed returns in
/// microseconds and an error may fail fast, and folding either into the
/// latency quantiles would make an overloaded daemon look *faster* as it
/// degrades.  Error and shed rates carry that signal instead.
///
/// `record()` is called on every request completion (worker threads plus
/// the handler shed path), so the fold is throttled: gauges recompute at
/// most every `refresh_ms` (the scrape path forces one, so `metrics`
/// responses are never staler than the last request).  With the default
/// 2048-sample window a refresh sorts ~16 KB -- noise next to a plan
/// compile.
namespace wsn {

class SloTracker {
 public:
  struct Config {
    std::size_t window = 2048;
    std::uint64_t refresh_ms = 250;
  };

  /// `metrics` may be null: the tracker then records into its ring but
  /// publishes nothing (keeps call sites unconditional).
  explicit SloTracker(MetricsRegistry* metrics) : SloTracker(metrics, Config()) {}
  SloTracker(MetricsRegistry* metrics, Config config);

  void record(double latency_ms, JournalOutcome outcome);

  /// Recomputes the gauges now when forced or the throttle has lapsed.
  void refresh(bool force = false);

 private:
  struct Sample {
    double latency_ms = 0.0;
    JournalOutcome outcome = JournalOutcome::kOk;
  };

  void refresh_locked();

  const Config config_;
  std::mutex mutex_;
  std::vector<Sample> ring_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
  std::chrono::steady_clock::time_point last_refresh_;

  Gauge* p50_ = nullptr;
  Gauge* p95_ = nullptr;
  Gauge* p99_ = nullptr;
  Gauge* error_rate_ = nullptr;
  Gauge* shed_rate_ = nullptr;
  Gauge* window_requests_ = nullptr;
};

}  // namespace wsn
