#include "service/client.h"

#include "common/string_util.h"

namespace wsn {

bool RpcClient::connect(const std::string& address, std::string& error) {
  sock_.close();
  if (starts_with(address, "unix:")) {
    return connect_unix(address.substr(5), sock_, error);
  }
  std::string hostport = address;
  if (starts_with(hostport, "tcp:")) hostport = hostport.substr(4);
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos) {
    error = "address must be tcp:<host>:<port> or unix:<path>: " + address;
    return false;
  }
  std::uint64_t port = 0;
  if (!parse_u64(hostport.substr(colon + 1), port) || port == 0 ||
      port > 65535) {
    error = "bad port in address: " + address;
    return false;
  }
  return connect_tcp(hostport.substr(0, colon), static_cast<int>(port),
                     sock_, error);
}

bool RpcClient::call(std::string_view request, std::string& response,
                     std::string& error) {
  if (!sock_.valid()) {
    error = "not connected";
    return false;
  }
  if (!write_frame(sock_, request)) {
    error = "send failed";
    return false;
  }
  const FrameStatus status = read_frame(sock_, response, max_frame_bytes_);
  if (status != FrameStatus::kOk) {
    error = "read failed: " + std::string(to_string(status));
    return false;
  }
  return true;
}

bool RpcClient::call_json(std::string_view request, JsonValue& response,
                          std::string& error) {
  std::string payload;
  if (!call(request, payload, error)) return false;
  std::string json_error;
  if (!parse_json(payload, response, &json_error)) {
    error = "unparseable response: " + json_error;
    return false;
  }
  return true;
}

bool RpcClient::scenario(
    std::string_view request,
    const std::function<void(const std::string& line)>& on_record,
    JsonValue& finish, std::string& error) {
  if (!sock_.valid()) {
    error = "not connected";
    return false;
  }
  if (!write_frame(sock_, request)) {
    error = "send failed";
    return false;
  }
  std::string payload;
  while (true) {
    const FrameStatus status = read_frame(sock_, payload, max_frame_bytes_);
    if (status != FrameStatus::kOk) {
      error = "read failed mid-stream: " + std::string(to_string(status));
      return false;
    }
    JsonValue doc;
    std::string json_error;
    if (!parse_json(payload, doc, &json_error)) {
      error = "unparseable frame: " + json_error;
      return false;
    }
    // Record frames have no "type" member (the results schema is
    // typeless); control frames always do.
    const JsonValue* type = doc.find("type");
    if (type == nullptr || !type->is_string()) {
      if (on_record) on_record(payload);
      continue;
    }
    const std::string& kind = type->as_string();
    if (kind == "scenario.begin") continue;
    if (kind == "scenario.done" || kind == "error") {
      finish = doc;
      return true;
    }
    error = "unexpected frame type mid-stream: " + kind;
    return false;
  }
}

}  // namespace wsn
