#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

/// WSNJRNL1 -- the append-only request journal behind meshbcastd.
///
/// One fixed-size record per admitted-lane request (plan / simulate /
/// scenario, sheds included; the inline health/metrics/shutdown lanes
/// are deliberately absent so a journal diff against a loadgen run's
/// client-side counts balances exactly).  The format follows the
/// WSNPLAN1 conventions from store/serialize.h: explicit magic, explicit
/// version, little-endian fixed-width fields, and an FNV-1a checksum --
/// here per record rather than per file, because the file is append-only
/// and must survive losing its tail.
///
/// Layout:
///   header (16 bytes):  "WSNJRNL1" | u32 version=1 | u32 reserved=0
///   record (96 bytes):  u64 seq        server-assigned request id
///                       u64 client_id  client "id" echo (see flags)
///                       u64 ts_micros  wall clock at admission
///                       u64 fp_hi, u64 fp_lo   plan/spec fingerprint
///                       f64 admission_ms  frame read -> enqueue
///                       f64 queue_ms      enqueue -> worker pop
///                       f64 exec_ms       compile / simulate / scenario
///                       f64 emit_ms       response frame write(s)
///                       f64 total_ms      admission + queue + exec + emit
///                       u8 method | u8 outcome | u8 flags | 5 pad bytes
///                       u64 checksum   fnv1a64 of the preceding 88 bytes
///
/// Durability: appends are buffered and flushed (write + fsync) by a
/// background thread every `flush_interval_ms` or once `flush_batch`
/// records pend, whichever comes first -- "fsync'd in batches".  A crash
/// therefore loses at most the unflushed window, and a torn write leaves
/// a partial or checksum-failing record at the tail.  `open()` scans the
/// file, truncates everything after the last valid record (torn-tail
/// truncation, like scenario checkpoints), and replays the valid prefix
/// into lifetime counters so a restarted daemon can answer "what did I
/// serve" across its whole history.
namespace wsn {

inline constexpr std::string_view kJournalMagic = "WSNJRNL1";
inline constexpr std::uint32_t kJournalVersion = 1;
inline constexpr std::size_t kJournalHeaderSize = 16;
inline constexpr std::size_t kJournalRecordSize = 96;

enum class JournalMethod : std::uint8_t {
  kPlan = 0,
  kSimulate = 1,
  kScenario = 2,
};

enum class JournalOutcome : std::uint8_t {
  kOk = 0,
  kError = 1,
  kShed = 2,  // admission refused on a full queue ("overloaded")
};

/// Record flag bits.
inline constexpr std::uint8_t kJournalHasClientId = 1u << 0;
/// The request was refused because the daemon was draining (the
/// "shutting_down" error) -- the drain marker the restart analysis keys
/// on.  Such refusals are journaled as kError, not kShed, mirroring how
/// loadgen classifies them client-side.
inline constexpr std::uint8_t kJournalDrainRefused = 1u << 1;

[[nodiscard]] std::string_view to_string(JournalMethod method) noexcept;
[[nodiscard]] std::string_view to_string(JournalOutcome outcome) noexcept;
[[nodiscard]] bool parse_journal_method(std::string_view text,
                                        JournalMethod& out) noexcept;
[[nodiscard]] bool parse_journal_outcome(std::string_view text,
                                         JournalOutcome& out) noexcept;

struct JournalRecord {
  std::uint64_t seq = 0;
  std::uint64_t client_id = 0;
  std::uint64_t ts_micros = 0;
  std::uint64_t fp_hi = 0;
  std::uint64_t fp_lo = 0;
  double admission_ms = 0.0;
  double queue_ms = 0.0;
  double exec_ms = 0.0;
  double emit_ms = 0.0;
  double total_ms = 0.0;
  JournalMethod method = JournalMethod::kPlan;
  JournalOutcome outcome = JournalOutcome::kOk;
  std::uint8_t flags = 0;
};

/// Encodes one record (kJournalRecordSize bytes, checksum included).
[[nodiscard]] std::string encode_journal_record(const JournalRecord& record);

/// Allocation-free variant for the append hot path: writes exactly
/// kJournalRecordSize bytes at `out`.
void encode_journal_record_to(const JournalRecord& record,
                              char* out) noexcept;

/// Decodes one record; false when `bytes` is not exactly
/// kJournalRecordSize long or the checksum does not match.
[[nodiscard]] bool decode_journal_record(std::string_view bytes,
                                         JournalRecord& out) noexcept;

/// What `open()` recovered from an existing journal file.
struct JournalReplay {
  std::uint64_t records = 0;
  std::uint64_t max_seq = 0;
  std::uint64_t served = 0;   // outcome == kOk
  std::uint64_t errors = 0;   // outcome == kError
  std::uint64_t sheds = 0;    // outcome == kShed
  std::uint64_t truncated_bytes = 0;  // torn tail dropped at open
};

/// Lifetime totals: the replayed prefix plus everything appended since
/// open.  This is what the daemon's lifetime gauges report.
struct JournalLifetime {
  std::uint64_t records = 0;
  std::uint64_t served = 0;
  std::uint64_t errors = 0;
  std::uint64_t sheds = 0;
};

class RequestJournal {
 public:
  struct Config {
    std::string path;
    std::uint64_t flush_interval_ms = 50;
    /// Pending-record count that wakes the flusher early.  This is a
    /// memory-growth backstop, not the durability knob -- the interval
    /// bounds data loss.  Set high enough that a loaded daemon is paced
    /// by the timer (each early wake is a write+fsync; at tens of
    /// thousands of requests per second a small batch turns into
    /// hundreds of fsyncs per second and measurably slows serving).
    std::size_t flush_batch = 1024;
  };

  RequestJournal() = default;
  ~RequestJournal();
  RequestJournal(const RequestJournal&) = delete;
  RequestJournal& operator=(const RequestJournal&) = delete;

  /// Opens (creating if absent) the journal, truncates any torn tail,
  /// replays the valid prefix, and starts the flusher thread.  False
  /// with a diagnostic on IO failure or a foreign/mismatched header.
  [[nodiscard]] bool open(const Config& config, std::string& error);

  [[nodiscard]] const JournalReplay& replay() const noexcept {
    return replay_;
  }

  /// Thread-safe; buffers the record for the next batch flush.
  void append(const JournalRecord& record);

  /// Synchronously writes and fsyncs everything buffered so far.
  void flush();

  /// Stops the flusher, flushes the remainder, closes the fd.
  /// Idempotent; the destructor calls it.
  void close();

  /// Replay base + appended-since-open, updated atomically with append.
  [[nodiscard]] JournalLifetime lifetime() const noexcept;

 private:
  void flusher_main();
  void write_locked(std::string batch);

  Config config_;
  int fd_ = -1;
  JournalReplay replay_;

  std::mutex mutex_;              // guards pending_ + stop_
  std::condition_variable cv_;
  std::string pending_;
  std::size_t pending_records_ = 0;
  bool stop_ = false;
  std::thread flusher_;
  std::mutex io_mutex_;           // serializes write+fsync batches

  std::atomic<std::uint64_t> total_records_{0};
  std::atomic<std::uint64_t> total_served_{0};
  std::atomic<std::uint64_t> total_errors_{0};
  std::atomic<std::uint64_t> total_sheds_{0};
};

/// Tolerant whole-file read for the query CLI and tests: every valid
/// record in prefix order, plus how many trailing bytes did not form a
/// valid record (0 on a clean file).  Does not modify the file.
struct JournalReadResult {
  std::vector<JournalRecord> records;
  std::uint64_t torn_bytes = 0;
};
[[nodiscard]] bool read_journal_file(const std::string& path,
                                     JournalReadResult& out,
                                     std::string& error);

}  // namespace wsn
