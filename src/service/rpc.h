#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/json.h"

/// The `meshbcast.rpc` v1 request/response codec.
///
/// Wire format: each message is one frame (common/socket.h -- 4-byte
/// big-endian length prefix) whose payload is a single UTF-8 JSON object.
/// Requests carry a required `"type"` and an optional non-negative
/// integer `"id"` the server echoes back, so a client can correlate
/// without trusting ordering:
///
///   {"type":"health","id":7}
///   {"type":"plan","family":"2D-4","dims":[32,16],"source":100,
///    "protocol":"paper"}
///   {"type":"simulate","family":"2D-4","sources":[100],
///    "protocols":["paper"],"audit":true}          // one scenario entry
///   {"type":"scenario","spec":{...spec doc...},"workers":4}
///   {"type":"shutdown"}
///
/// Responses are `{"type":"response","id":N,"ok":true,...}` or
/// `{"type":"error","id":N,"error":{"code":"...","message":"..."}}`.
/// The server additionally stamps every response and structured error
/// with `"req":<u64>` -- its own unique request id, distinct from the
/// client-chosen `"id"` -- which is the key into the request journal
/// (service/journal.h) and the tag on the request's timeline spans, so
/// one slow reply can be traced end to end.  Frames that fail before an
/// id is assigned (unparseable payloads) carry no `"req"`.
/// A `scenario` request streams: one `scenario.begin` frame, then each
/// result record as its own frame -- the *exact bytes* an offline
/// scenario run writes to its results file, which is what makes service
/// output diffable against `scenario_runner` -- then one `scenario.done`
/// frame.  Record frames carry no `"type"` member (the results schema
/// has none), so control frames are unambiguous.
///
/// Parsing is strict in layers, each with its own error code so clients
/// (and the framing-hardening tests) can tell malice from typo:
/// `bad_encoding` (not UTF-8), `bad_json` (unparseable), `bad_request`
/// (schema violation, unknown type, bad field), and -- issued by the
/// server, not the parser -- `oversized`, `overloaded`, `shutting_down`,
/// `invalid_spec`, `internal`.
namespace wsn {

namespace rpc_code {
inline constexpr std::string_view kBadEncoding = "bad_encoding";
inline constexpr std::string_view kBadJson = "bad_json";
inline constexpr std::string_view kBadRequest = "bad_request";
inline constexpr std::string_view kOversized = "oversized";
inline constexpr std::string_view kOverloaded = "overloaded";
inline constexpr std::string_view kShuttingDown = "shutting_down";
inline constexpr std::string_view kInvalidSpec = "invalid_spec";
inline constexpr std::string_view kInternal = "internal";
}  // namespace rpc_code

enum class RpcType : std::uint8_t {
  kHealth = 0,
  kMetrics,
  kPlan,
  kSimulate,
  kScenario,
  kShutdown,
};

[[nodiscard]] std::string_view to_string(RpcType type) noexcept;

struct RpcError {
  std::string code;
  std::string message;
};

/// `plan`: compile-or-fetch one relay plan through the shared PlanStore.
/// Fields: family (required), dims ([m,n] or [m,n,l]; 0 = paper default),
/// spacing (default 0.5), source (default 0), protocol ("paper"|"cds",
/// default "paper"), packet_bits (default 512).  Unknown keys are a
/// `bad_request` -- same strictness as the scenario spec parser.
struct PlanRpc {
  std::string family;
  int m = 0, n = 0, l = 1;
  double spacing = 0.5;
  std::uint64_t source = 0;
  std::string protocol = "paper";
  std::uint64_t packet_bits = 512;
};

/// `simulate`: one scenario entry inline (any ScenarioEntry key), run to
/// its deterministic record.  The parser strips the envelope keys
/// (type/id/audit) and wraps the rest into a one-entry spec document;
/// the server requires the expansion to be exactly one job.
struct SimulateRpc {
  JsonValue spec_doc;  // {"name":...,"scenarios":[<entry>]}
  bool audit = false;
};

/// `scenario`: a full spec document under "spec", streamed back in job
/// order.  `workers` asks for an engine pool size (server-capped).
struct ScenarioRpc {
  JsonValue spec_doc;
  std::uint64_t workers = 0;  // 0 = server default
  bool audit = false;
};

struct RpcRequest {
  RpcType type = RpcType::kHealth;
  bool has_id = false;
  std::uint64_t id = 0;
  /// Server-assigned request id (not parsed from the wire; the service
  /// stamps it after a successful parse).  0 = unassigned; echoed as
  /// `"req"` in responses and errors when nonzero.
  std::uint64_t seq = 0;
  PlanRpc plan;
  SimulateRpc simulate;
  ScenarioRpc scenario;
};

/// Parses one frame payload.  On failure returns false with `error`
/// filled; `out.has_id`/`out.id` are still populated whenever the
/// envelope was readable, so the error response can echo the id.
[[nodiscard]] bool parse_rpc_request(std::string_view payload,
                                     RpcRequest& out, RpcError& error);

/// Renders one error frame payload.  `seq` is the server request id to
/// echo (`"req"`; 0 = omit).
[[nodiscard]] std::string rpc_error_json(bool has_id, std::uint64_t id,
                                         std::string_view code,
                                         std::string_view message,
                                         std::uint64_t seq = 0);

/// Convenience overload echoing both ids straight from the request.
[[nodiscard]] std::string rpc_error_json(const RpcRequest& req,
                                         std::string_view code,
                                         std::string_view message);

/// Opens a `{"type":<frame_type>,"id":...,"req":...,"ok":true` object
/// (id/req only when present); the caller appends members and calls
/// `end_object()`.
[[nodiscard]] JsonWriter rpc_response_begin(
    const RpcRequest& req, std::string_view frame_type = "response");

}  // namespace wsn
