#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "common/json.h"
#include "common/socket.h"

/// Blocking `meshbcast.rpc` v1 client -- the tests' and the load
/// generator's view of the service.  One request in flight at a time,
/// matching the server's per-connection discipline.
namespace wsn {

class RpcClient {
 public:
  /// Connects to "tcp:<host>:<port>" or "unix:<path>" (the string
  /// MeshbcastService::address() returns).
  [[nodiscard]] bool connect(const std::string& address, std::string& error);

  [[nodiscard]] bool connected() const noexcept { return sock_.valid(); }
  void close() noexcept { sock_.close(); }
  [[nodiscard]] Socket& socket() noexcept { return sock_; }

  /// Response frames larger than this are treated as a protocol error
  /// (generous: scenario records are small, metrics scrapes medium).
  void set_max_frame_bytes(std::size_t n) noexcept { max_frame_bytes_ = n; }

  /// One frame out, one frame in.  False + `error` on transport failure;
  /// a structured error *response* is a successful call (the caller
  /// inspects the payload).
  [[nodiscard]] bool call(std::string_view request, std::string& response,
                          std::string& error);

  /// `call` plus JSON parsing of the response.
  [[nodiscard]] bool call_json(std::string_view request, JsonValue& response,
                               std::string& error);

  /// Sends a `scenario` request and consumes the stream: `on_record` is
  /// invoked with each record frame's exact bytes (in job order);
  /// `finish` receives the `scenario.done` (or `error`) frame.  False +
  /// `error` only on transport/protocol failure.
  [[nodiscard]] bool scenario(
      std::string_view request,
      const std::function<void(const std::string& line)>& on_record,
      JsonValue& finish, std::string& error);

 private:
  Socket sock_;
  std::size_t max_frame_bytes_ = 64u << 20;
};

}  // namespace wsn
