#include "service/slo.h"

#include <algorithm>
#include <cmath>

namespace wsn {

namespace {

/// Linear-interpolation percentile over a sorted sample set -- the same
/// convention loadgen uses client-side, so the two views are comparable.
double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

SloTracker::SloTracker(MetricsRegistry* metrics, Config config)
    : config_(config),
      ring_(std::max<std::size_t>(config.window, 1)),
      last_refresh_(std::chrono::steady_clock::now()) {
  if (metrics != nullptr) {
    p50_ = &metrics->gauge("service.slo.p50_ms");
    p95_ = &metrics->gauge("service.slo.p95_ms");
    p99_ = &metrics->gauge("service.slo.p99_ms");
    error_rate_ = &metrics->gauge("service.slo.error_rate");
    shed_rate_ = &metrics->gauge("service.slo.shed_rate");
    window_requests_ = &metrics->gauge("service.slo.window_requests");
  }
}

void SloTracker::record(double latency_ms, JournalOutcome outcome) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_[next_] = Sample{latency_ms, outcome};
  next_ = (next_ + 1) % ring_.size();
  count_ = std::min(count_ + 1, ring_.size());
  const auto now = std::chrono::steady_clock::now();
  if (now - last_refresh_ >= std::chrono::milliseconds(config_.refresh_ms)) {
    last_refresh_ = now;
    refresh_locked();
  }
}

void SloTracker::refresh(bool force) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto now = std::chrono::steady_clock::now();
  if (!force &&
      now - last_refresh_ < std::chrono::milliseconds(config_.refresh_ms)) {
    return;
  }
  last_refresh_ = now;
  refresh_locked();
}

void SloTracker::refresh_locked() {
  if (p50_ == nullptr) return;
  std::vector<double> served;
  served.reserve(count_);
  std::size_t errors = 0;
  std::size_t sheds = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const Sample& sample = ring_[i];
    switch (sample.outcome) {
      case JournalOutcome::kOk: served.push_back(sample.latency_ms); break;
      case JournalOutcome::kError: errors += 1; break;
      case JournalOutcome::kShed: sheds += 1; break;
    }
  }
  std::sort(served.begin(), served.end());
  p50_->set(percentile_sorted(served, 0.50));
  p95_->set(percentile_sorted(served, 0.95));
  p99_->set(percentile_sorted(served, 0.99));
  const double window = count_ == 0 ? 1.0 : static_cast<double>(count_);
  error_rate_->set(static_cast<double>(errors) / window);
  shed_rate_->set(static_cast<double>(sheds) / window);
  window_requests_->set(static_cast<double>(count_));
}

}  // namespace wsn
