#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/assert.h"

/// Keyed mutual exclusion for request coalescing.
///
/// The plan store deliberately has no per-key compile lock: two workers
/// racing the same key both compile and install identical plans, which is
/// harmless inside one batch run.  A *service* is different -- a load
/// spike of identical cold requests would burn a core per duplicate
/// compile while the admission queue backs up.  KeyedMutex serializes the
/// compile per fingerprint: the first requester compiles, the rest block
/// briefly and then hit the memory tier, so the store's `compiles`
/// counter moves by exactly one per distinct key no matter how many
/// clients race it (the acceptance test for the warm path).
///
/// Entries are created on first lock and dropped when the last holder
/// releases, so the map stays proportional to *in-flight* keys, not to
/// every key ever seen.
namespace wsn {

class KeyedMutex {
  struct Entry {
    std::mutex lock;
    std::size_t refs = 0;
  };

 public:
  /// Holds the per-key lock for its lifetime; move-only.
  class Guard {
   public:
    Guard(Guard&& other) noexcept
        : owner_(other.owner_), entry_(other.entry_), key_(std::move(other.key_)) {
      other.owner_ = nullptr;
      other.entry_ = nullptr;
    }
    Guard& operator=(Guard&&) = delete;
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { release(); }

   private:
    friend class KeyedMutex;
    Guard(KeyedMutex* owner, Entry* entry, std::string key)
        : owner_(owner), entry_(entry), key_(std::move(key)) {}

    void release() noexcept {
      if (owner_ == nullptr) return;
      entry_->lock.unlock();
      {
        const std::lock_guard<std::mutex> map_lock(owner_->mutex_);
        const auto it = owner_->entries_.find(key_);
        WSN_ASSERT(it != owner_->entries_.end());
        if (--it->second->refs == 0) owner_->entries_.erase(it);
      }
      owner_ = nullptr;
      entry_ = nullptr;
    }

    KeyedMutex* owner_;
    Entry* entry_;
    std::string key_;
  };

  /// Blocks until `key`'s lock is free, then holds it until the Guard
  /// dies.  Different keys never contend (beyond the map lookup).
  [[nodiscard]] Guard lock(const std::string& key) {
    Entry* entry = nullptr;
    {
      const std::lock_guard<std::mutex> map_lock(mutex_);
      std::unique_ptr<Entry>& slot = entries_[key];
      if (!slot) slot = std::make_unique<Entry>();
      slot->refs++;
      entry = slot.get();
    }
    // Entry stays alive while refs > 0, so locking outside the map lock
    // is safe -- and required, or a long compile would serialize every
    // other key behind it.
    entry->lock.lock();
    return Guard(this, entry, key);
  }

 private:
  std::mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace wsn
