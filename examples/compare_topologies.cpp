// Compare the four regular WSN topologies on the same node budget -- the
// question the paper's evaluation answers (which regular deployment should
// you pick?).
//
//   $ compare_topologies [--nodes 512] [--csv]
//
// For each family this sweeps every source position, then prints the
// best/mean/worst energy envelope, the max delay, and the winner per metric.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/sweep.h"
#include "common/cli.h"
#include "common/csv.h"
#include "common/table.h"
#include "common/string_util.h"
#include "topology/factory.h"

namespace {

/// Factors `nodes` into the shapes the paper uses: a 2:1-ish 2D mesh and a
/// near-cubic 3D mesh.
struct Shapes {
  int m2, n2;      // 2D
  int m3, n3, l3;  // 3D
};

Shapes shapes_for(std::size_t nodes) {
  int side = 1;
  while (static_cast<std::size_t>(2 * side * side) < nodes) ++side;
  int cube = 1;
  while (static_cast<std::size_t>(cube) * static_cast<std::size_t>(cube) *
             static_cast<std::size_t>(cube) <
         nodes) {
    ++cube;
  }
  return {2 * side, side, cube, cube, cube};
}

}  // namespace

int main(int argc, char** argv) {
  wsn::CliParser cli("compare_topologies",
                     "sweep all sources on every regular topology");
  cli.add_option("nodes", "approximate node budget", "512");
  cli.add_flag("csv", "emit per-family CSV rows instead of the table");
  if (!cli.parse(argc, argv)) return 1;

  const Shapes shape = shapes_for(cli.get_u64("nodes"));

  wsn::AsciiTable table({"Topology", "nodes", "best P(J)", "mean P(J)",
                         "worst P(J)", "best Tx", "worst Tx", "max delay"});
  table.set_title("Source-position envelope per topology (paper protocols)");
  wsn::CsvWriter csv(std::cout);
  if (cli.get_flag("csv")) {
    csv.row({"family", "nodes", "best_power", "mean_power", "worst_power",
             "best_tx", "worst_tx", "max_delay"});
  }

  std::string power_winner;
  std::string delay_winner;
  double best_power = 1e30;
  wsn::Slot best_delay = wsn::kNeverSlot;

  for (const std::string& family : wsn::regular_families()) {
    const auto topo =
        family == "3D-6"
            ? wsn::make_mesh(family, shape.m3, shape.n3, shape.l3)
            : wsn::make_mesh(family, shape.m2, shape.n2);
    const wsn::SweepResult sweep = wsn::sweep_all_sources(*topo);

    const auto& best = sweep.best();
    const auto& worst = sweep.worst();
    if (cli.get_flag("csv")) {
      csv.typed_row(family, topo->num_nodes(), best.stats.total_energy(),
                    sweep.mean_energy(), worst.stats.total_energy(),
                    best.stats.tx, worst.stats.tx, sweep.max_delay());
    }
    table.add_row({family, std::to_string(topo->num_nodes()),
                   wsn::sci(best.stats.total_energy()),
                   wsn::sci(sweep.mean_energy()),
                   wsn::sci(worst.stats.total_energy()),
                   std::to_string(best.stats.tx),
                   std::to_string(worst.stats.tx),
                   std::to_string(sweep.max_delay())});

    if (sweep.mean_energy() < best_power) {
      best_power = sweep.mean_energy();
      power_winner = family;
    }
    if (sweep.max_delay() < best_delay) {
      best_delay = sweep.max_delay();
      delay_winner = family;
    }
  }

  if (!cli.get_flag("csv")) {
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nmost power-efficient: %s   smallest max delay: %s\n",
                power_winner.c_str(), delay_winner.c_str());
    std::printf("(the paper concludes 2D-4 and 3D-6 respectively, §5)\n");
  }
  return 0;
}
