// The library as a command-line multitool.
//
//   meshbcast_cli run      --family 2D-4 --width 32 --height 16 --src 264
//   meshbcast_cli sweep    --family 2D-8                       (all sources)
//   meshbcast_cli viz      --family 2D-3 --src 201             (relay map)
//   meshbcast_cli pipeline --family 2D-4 --packets 4           (throughput)
//
// One binary exposing the main entry points: single broadcast, full
// source sweep, role-map rendering, and pipeline-period search.  The
// --protocol flag switches between the paper's specialized rules, the
// generic CDS, and the flooding/gossip baselines.
//
// Observability (any command):
//   --trace-out t.json     Chrome/Perfetto trace (t.jsonl -> JSONL events)
//   --metrics-out m.json   metrics-registry scrape after the run
//   --profile              print the profiling-span report on exit

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "analysis/ascii_viz.h"
#include "analysis/sweep.h"
#include "common/cli.h"
#include "common/string_util.h"
#include "obs/event_sink.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/profile.h"
#include "protocol/cds_broadcast.h"
#include "protocol/flooding.h"
#include "protocol/gossip.h"
#include "protocol/registry.h"
#include "sim/pipeline.h"
#include "topology/factory.h"
#include "topology/graph_algos.h"
#include "topology/mesh2d3.h"
#include "topology/mesh2d4.h"
#include "topology/mesh2d8.h"

namespace {

wsn::RelayPlan make_plan(const std::string& protocol,
                         const wsn::Topology& topo, wsn::NodeId src) {
  if (protocol == "paper") return wsn::paper_plan(topo, src);
  if (protocol == "cds") {
    return wsn::resolve_full_reachability(topo,
                                          wsn::CdsBroadcast().plan(topo, src));
  }
  if (protocol == "flood") return wsn::Flooding(7).plan(topo, src);
  if (protocol == "gossip") return wsn::Gossip(0.65, 7).plan(topo, src);
  std::fprintf(stderr, "unknown --protocol %s (paper|cds|flood|gossip)\n",
               protocol.c_str());
  std::exit(1);
}

const wsn::Grid2D* grid2d_of(const wsn::Topology& topo) {
  if (const auto* m = dynamic_cast<const wsn::Mesh2D3*>(&topo)) {
    return &m->grid();
  }
  if (const auto* m = dynamic_cast<const wsn::Mesh2D4*>(&topo)) {
    return &m->grid();
  }
  if (const auto* m = dynamic_cast<const wsn::Mesh2D8*>(&topo)) {
    return &m->grid();
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  wsn::CliParser cli("meshbcast_cli",
                     "run | sweep | viz | pipeline on any mesh");
  cli.add_option("family", "2D-3, 2D-4, 2D-8 or 3D-6", "2D-4");
  cli.add_option("width", "mesh columns", "32");
  cli.add_option("height", "mesh rows", "16");
  cli.add_option("depth", "mesh planes (3D-6)", "8");
  cli.add_option("src", "source node id; 'center' for the graph center",
                 "center");
  cli.add_option("protocol", "paper, cds, flood or gossip", "paper");
  cli.add_option("packets", "pipeline depth (pipeline command)", "4");
  cli.add_option("trace-out",
                 "event trace path: .jsonl = JSONL, else Chrome/Perfetto "
                 "trace-event JSON",
                 "");
  cli.add_option("metrics-out", "metrics JSON path", "");
  cli.add_flag("profile", "print the profiling-span report");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().empty()) {
    std::fputs(cli.usage().c_str(), stderr);
    return 1;
  }
  const std::string command = cli.positional().front();

  const std::string trace_path = cli.get("trace-out");
  const std::string metrics_path = cli.get("metrics-out");
  const bool profile = cli.get_flag("profile");
  if (profile) wsn::Profiler::instance().set_enabled(true);
  if (!trace_path.empty() && command == "sweep") {
    std::fprintf(stderr,
                 "--trace-out is per-run; sweep runs sources concurrently "
                 "(use --metrics-out / --profile there)\n");
    return 1;
  }
  wsn::EventSink sink;
  wsn::MetricsRegistry registry;
  wsn::Observer observer(trace_path.empty() ? nullptr : &sink, &registry);
  const bool observe = !trace_path.empty() || !metrics_path.empty();

  const auto topo = wsn::make_mesh(cli.get("family"),
                                   static_cast<int>(cli.get_u64("width")),
                                   static_cast<int>(cli.get_u64("height")),
                                   static_cast<int>(cli.get_u64("depth")));
  wsn::NodeId src = 0;
  if (cli.get("src") == "center") {
    src = wsn::graph_center(*topo);
  } else {
    std::uint64_t value = 0;
    if (!wsn::parse_u64(cli.get("src"), value) ||
        value >= topo->num_nodes()) {
      std::fprintf(stderr, "bad --src\n");
      return 1;
    }
    src = static_cast<wsn::NodeId>(value);
  }

  wsn::SimOptions sim_options;
  sim_options.observer = observe ? &observer : nullptr;

  // Writes the requested observability artifacts, then forwards `code`.
  const auto finish = [&](int code) {
    if (!trace_path.empty()) {
      std::ofstream file(trace_path);
      if (!file) {
        std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        return 1;
      }
      if (trace_path.size() >= 6 &&
          trace_path.rfind(".jsonl") == trace_path.size() - 6) {
        wsn::write_events_jsonl(file, sink);
      } else {
        wsn::write_chrome_trace(file, sink);
      }
      std::printf("trace: %s (%llu events)\n", trace_path.c_str(),
                  static_cast<unsigned long long>(sink.total()));
    }
    if (!metrics_path.empty()) {
      std::ofstream file(metrics_path);
      if (!file) {
        std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
        return 1;
      }
      wsn::write_metrics_json(file, registry.scrape());
      std::printf("metrics: %s\n", metrics_path.c_str());
    }
    if (profile) {
      std::fputs(wsn::Profiler::instance().report_text().c_str(), stdout);
    }
    return code;
  };

  if (command == "run") {
    const wsn::RelayPlan plan = make_plan(cli.get("protocol"), *topo, src);
    const auto out = wsn::simulate_broadcast(*topo, plan, sim_options);
    std::printf("%s, source %u, %s protocol\n  %s\n", topo->name().c_str(),
                src, cli.get("protocol").c_str(),
                out.stats.summary().c_str());
    return finish(0);
  }
  if (command == "sweep") {
    const std::string protocol = cli.get("protocol");
    const wsn::SweepResult sweep = wsn::sweep_all_sources_with(
        *topo,
        [&](const wsn::Topology& t, wsn::NodeId s) {
          return make_plan(protocol, t, s);
        },
        sim_options);
    std::printf("%s, %zu sources, %s protocol\n", topo->name().c_str(),
                sweep.per_source.size(), protocol.c_str());
    std::printf("  best  src=%u  %s\n", sweep.best().source,
                sweep.best().stats.summary().c_str());
    std::printf("  worst src=%u  %s\n", sweep.worst().source,
                sweep.worst().stats.summary().c_str());
    std::printf("  mean power %s J, max delay %u, all reached: %s\n",
                wsn::sci(sweep.mean_energy()).c_str(), sweep.max_delay(),
                sweep.all_fully_reached() ? "yes" : "NO");
    return finish(0);
  }
  if (command == "viz") {
    const wsn::Grid2D* grid = grid2d_of(*topo);
    if (grid == nullptr) {
      std::fprintf(stderr, "viz renders the 2D families only\n");
      return 1;
    }
    const wsn::RelayPlan plan = make_plan(cli.get("protocol"), *topo, src);
    const auto out = wsn::simulate_broadcast(*topo, plan, sim_options);
    std::printf("%s\n", out.stats.summary().c_str());
    std::fputs(wsn::render_roles(*grid, plan, &out).c_str(), stdout);
    return finish(0);
  }
  if (command == "pipeline") {
    const wsn::RelayPlan plan = make_plan(cli.get("protocol"), *topo, src);
    const auto packets = static_cast<std::size_t>(cli.get_u64("packets"));
    const wsn::Slot period =
        wsn::min_pipeline_interval(*topo, plan, packets, 256);
    if (period == 0) {
      std::printf("no safe interval <= 256 slots\n");
    } else {
      std::printf("%s: %zu-packet pipeline period = %u slots\n",
                  topo->name().c_str(), packets, period);
      // Replay the found period once with the observer installed so the
      // trace/metrics artifacts show the steady-state pipeline.
      if (observe) {
        wsn::PipelineOptions pipeline_options;
        pipeline_options.packets = packets;
        pipeline_options.interval = period;
        pipeline_options.sim = sim_options;
        (void)wsn::simulate_pipeline(*topo, plan, pipeline_options);
      }
    }
    return finish(0);
  }

  std::fprintf(stderr, "unknown command '%s' (run|sweep|viz|pipeline)\n",
               command.c_str());
  return 1;
}
