// The library as a command-line multitool.
//
//   meshbcast_cli run      --family 2D-4 --width 32 --height 16 --src 264
//   meshbcast_cli sweep    --family 2D-8                       (all sources)
//   meshbcast_cli viz      --family 2D-3 --src 201             (relay map)
//   meshbcast_cli pipeline --family 2D-4 --packets 4           (throughput)
//
// One binary exposing the main entry points: single broadcast, full
// source sweep, role-map rendering, and pipeline-period search.  The
// --protocol flag switches between the paper's specialized rules, the
// generic CDS, and the flooding/gossip baselines.

#include <cstdio>
#include <memory>
#include <string>

#include "analysis/ascii_viz.h"
#include "analysis/sweep.h"
#include "common/cli.h"
#include "common/string_util.h"
#include "protocol/cds_broadcast.h"
#include "protocol/flooding.h"
#include "protocol/gossip.h"
#include "protocol/registry.h"
#include "sim/pipeline.h"
#include "topology/factory.h"
#include "topology/graph_algos.h"
#include "topology/mesh2d3.h"
#include "topology/mesh2d4.h"
#include "topology/mesh2d8.h"

namespace {

wsn::RelayPlan make_plan(const std::string& protocol,
                         const wsn::Topology& topo, wsn::NodeId src) {
  if (protocol == "paper") return wsn::paper_plan(topo, src);
  if (protocol == "cds") {
    return wsn::resolve_full_reachability(topo,
                                          wsn::CdsBroadcast().plan(topo, src));
  }
  if (protocol == "flood") return wsn::Flooding(7).plan(topo, src);
  if (protocol == "gossip") return wsn::Gossip(0.65, 7).plan(topo, src);
  std::fprintf(stderr, "unknown --protocol %s (paper|cds|flood|gossip)\n",
               protocol.c_str());
  std::exit(1);
}

const wsn::Grid2D* grid2d_of(const wsn::Topology& topo) {
  if (const auto* m = dynamic_cast<const wsn::Mesh2D3*>(&topo)) {
    return &m->grid();
  }
  if (const auto* m = dynamic_cast<const wsn::Mesh2D4*>(&topo)) {
    return &m->grid();
  }
  if (const auto* m = dynamic_cast<const wsn::Mesh2D8*>(&topo)) {
    return &m->grid();
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  wsn::CliParser cli("meshbcast_cli",
                     "run | sweep | viz | pipeline on any mesh");
  cli.add_option("family", "2D-3, 2D-4, 2D-8 or 3D-6", "2D-4");
  cli.add_option("width", "mesh columns", "32");
  cli.add_option("height", "mesh rows", "16");
  cli.add_option("depth", "mesh planes (3D-6)", "8");
  cli.add_option("src", "source node id; 'center' for the graph center",
                 "center");
  cli.add_option("protocol", "paper, cds, flood or gossip", "paper");
  cli.add_option("packets", "pipeline depth (pipeline command)", "4");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().empty()) {
    std::fputs(cli.usage().c_str(), stderr);
    return 1;
  }
  const std::string command = cli.positional().front();

  const auto topo = wsn::make_mesh(cli.get("family"),
                                   static_cast<int>(cli.get_u64("width")),
                                   static_cast<int>(cli.get_u64("height")),
                                   static_cast<int>(cli.get_u64("depth")));
  wsn::NodeId src = 0;
  if (cli.get("src") == "center") {
    src = wsn::graph_center(*topo);
  } else {
    std::uint64_t value = 0;
    if (!wsn::parse_u64(cli.get("src"), value) ||
        value >= topo->num_nodes()) {
      std::fprintf(stderr, "bad --src\n");
      return 1;
    }
    src = static_cast<wsn::NodeId>(value);
  }

  if (command == "run") {
    const wsn::RelayPlan plan = make_plan(cli.get("protocol"), *topo, src);
    const auto out = wsn::simulate_broadcast(*topo, plan);
    std::printf("%s, source %u, %s protocol\n  %s\n", topo->name().c_str(),
                src, cli.get("protocol").c_str(),
                out.stats.summary().c_str());
    return 0;
  }
  if (command == "sweep") {
    const std::string protocol = cli.get("protocol");
    const wsn::SweepResult sweep = wsn::sweep_all_sources_with(
        *topo, [&](const wsn::Topology& t, wsn::NodeId s) {
          return make_plan(protocol, t, s);
        });
    std::printf("%s, %zu sources, %s protocol\n", topo->name().c_str(),
                sweep.per_source.size(), protocol.c_str());
    std::printf("  best  src=%u  %s\n", sweep.best().source,
                sweep.best().stats.summary().c_str());
    std::printf("  worst src=%u  %s\n", sweep.worst().source,
                sweep.worst().stats.summary().c_str());
    std::printf("  mean power %s J, max delay %u, all reached: %s\n",
                wsn::sci(sweep.mean_energy()).c_str(), sweep.max_delay(),
                sweep.all_fully_reached() ? "yes" : "NO");
    return 0;
  }
  if (command == "viz") {
    const wsn::Grid2D* grid = grid2d_of(*topo);
    if (grid == nullptr) {
      std::fprintf(stderr, "viz renders the 2D families only\n");
      return 1;
    }
    const wsn::RelayPlan plan = make_plan(cli.get("protocol"), *topo, src);
    const auto out = wsn::simulate_broadcast(*topo, plan);
    std::printf("%s\n", out.stats.summary().c_str());
    std::fputs(wsn::render_roles(*grid, plan, &out).c_str(), stdout);
    return 0;
  }
  if (command == "pipeline") {
    const wsn::RelayPlan plan = make_plan(cli.get("protocol"), *topo, src);
    const auto packets = static_cast<std::size_t>(cli.get_u64("packets"));
    const wsn::Slot period =
        wsn::min_pipeline_interval(*topo, plan, packets, 256);
    if (period == 0) {
      std::printf("no safe interval <= 256 slots\n");
    } else {
      std::printf("%s: %zu-packet pipeline period = %u slots\n",
                  topo->name().c_str(), packets, period);
    }
    return 0;
  }

  std::fprintf(stderr, "unknown command '%s' (run|sweep|viz|pipeline)\n",
               command.c_str());
  return 1;
}
