// The library as a command-line multitool.
//
//   meshbcast_cli run      --family 2D-4 --width 32 --height 16 --src 264
//   meshbcast_cli sweep    --family 2D-8                       (all sources)
//   meshbcast_cli viz      --family 2D-3 --src 201             (relay map)
//   meshbcast_cli pipeline --family 2D-4 --packets 4           (throughput)
//
// One binary exposing the main entry points: single broadcast, full
// source sweep, role-map rendering, and pipeline-period search.  The
// --protocol flag switches between the paper's specialized rules, the
// generic CDS, and the flooding/gossip baselines.
//
// Observability (any command):
//   --trace-out t.json     Chrome/Perfetto trace (t.jsonl -> JSONL events)
//   --metrics-out m.json   metrics-registry scrape after the run
//   --profile              print the profiling-span report on exit
//
// Plan store (run | sweep | viz | pipeline):
//   --plan-cache DIR       compile through a disk-backed plan store
//                          (store/plan_store.h); repeated invocations hit
//   --plan-out FILE        write the compiled plan as a binary artifact
//   --plan-in FILE         load the plan from an artifact instead of
//                          compiling (node count validated)

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "analysis/ascii_viz.h"
#include "analysis/sweep.h"
#include "common/cli.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "obs/event_sink.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/observer.h"
#include "obs/profile.h"
#include "obs/timeline.h"
#include "protocol/cds_broadcast.h"
#include "protocol/flooding.h"
#include "protocol/gossip.h"
#include "protocol/implicit_plan.h"
#include "protocol/registry.h"
#include "sim/bulk/bulk_audit.h"
#include "sim/bulk/bulk_simulator.h"
#include "sim/pipeline.h"
#include "store/plan_store.h"
#include "topology/factory.h"
#include "topology/graph_algos.h"
#include "topology/mesh2d3.h"
#include "topology/mesh2d4.h"
#include "topology/mesh2d8.h"

namespace {

/// A plan plus where it came from: freshly compiled, a plan-store tier,
/// or a --plan-in artifact.  `has_report` is true for the resolver-backed
/// protocols (paper, cds) and for artifacts, which store their report.
struct PlanOutcome {
  wsn::RelayPlan plan;
  wsn::ResolveReport report;
  bool has_report = false;
  std::string origin = "compiled";
};

PlanOutcome make_plan(const std::string& protocol, const wsn::Topology& topo,
                      wsn::NodeId src, wsn::PlanStore* store) {
  PlanOutcome out;
  wsn::PlanStore::Origin origin = wsn::PlanStore::Origin::kCompiled;
  if (protocol == "paper") {
    if (store != nullptr) {
      out.plan = wsn::paper_plan_cached(topo, src, {}, *store, &out.report,
                                        &origin);
      out.origin = wsn::to_string(origin);
    } else {
      out.plan = wsn::paper_plan(topo, src, {}, &out.report);
    }
    out.has_report = true;
    return out;
  }
  if (protocol == "cds") {
    if (store != nullptr) {
      const auto stored = store->fetch_or_compile(
          topo, src, "cds", {},
          [&](wsn::ResolveReport& report) {
            return wsn::resolve_full_reachability(
                topo, wsn::CdsBroadcast().plan(topo, src), {}, &report);
          },
          &origin);
      out.plan = stored->plan.to_relay_plan();
      out.report = stored->report;
      out.origin = wsn::to_string(origin);
    } else {
      out.plan = wsn::resolve_full_reachability(
          topo, wsn::CdsBroadcast().plan(topo, src), {}, &out.report);
    }
    out.has_report = true;
    return out;
  }
  if (protocol == "flood") {
    out.plan = wsn::Flooding(7).plan(topo, src);
    return out;
  }
  if (protocol == "gossip") {
    out.plan = wsn::Gossip(0.65, 7).plan(topo, src);
    return out;
  }
  std::fprintf(stderr, "unknown --protocol %s (paper|cds|flood|gossip)\n",
               protocol.c_str());
  std::exit(1);
}

/// Renders the resolver's account of the plan for the summary output, so
/// a cached plan can be compared against a fresh compile at a glance.
std::string plan_line(const PlanOutcome& outcome) {
  std::string line = "plan: " + outcome.origin;
  if (outcome.has_report) {
    line += ", repairs=" + std::to_string(outcome.report.repairs) +
            ", rounds=" + std::to_string(outcome.report.rounds) +
            ", unrepaired=" + std::to_string(outcome.report.unrepaired);
  } else {
    line += " (no resolver report)";
  }
  return line;
}

const wsn::Grid2D* grid2d_of(const wsn::Topology& topo) {
  if (const auto* m = dynamic_cast<const wsn::Mesh2D3*>(&topo)) {
    return &m->grid();
  }
  if (const auto* m = dynamic_cast<const wsn::Mesh2D4*>(&topo)) {
    return &m->grid();
  }
  if (const auto* m = dynamic_cast<const wsn::Mesh2D8*>(&topo)) {
    return &m->grid();
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  wsn::CliParser cli("meshbcast_cli",
                     "run | sweep | viz | pipeline on any mesh");
  cli.add_option("family", "2D-3, 2D-4, 2D-8 or 3D-6", "2D-4");
  cli.add_option("width", "mesh columns", "32");
  cli.add_option("height", "mesh rows", "16");
  cli.add_option("depth", "mesh planes (3D-6)", "8");
  cli.add_option("src", "source node id; 'center' for the graph center",
                 "center");
  cli.add_option("protocol", "paper, cds, flood or gossip", "paper");
  cli.add_option("engine",
                 "reference (materialized adjacency) or bulk (implicit "
                 "lattice + bitset kernel; handles million-node meshes)",
                 "reference");
  cli.add_option("progress-slots",
                 "--engine bulk: heartbeat line on stderr every N completed "
                 "slots (0 = silent)",
                 "0");
  cli.add_option("packets", "pipeline depth (pipeline command)", "4");
  cli.add_option("workers",
                 "sweep worker threads (flag > MESHBCAST_THREADS > "
                 "hardware)",
                 "0");
  cli.add_option("trace-out",
                 "event trace path: .jsonl = JSONL, else Chrome/Perfetto "
                 "trace-event JSON",
                 "");
  cli.add_option("metrics-out", "metrics JSON path", "");
  cli.add_flag("profile", "print the profiling-span report");
  cli.add_option("timeline-out",
                 "record per-thread span timelines; .jsonl = "
                 "meshbcast.timeline, else Chrome/Perfetto trace-event JSON",
                 "");
  cli.add_option("plan-cache",
                 "plan-store directory; compiles go through the cache", "");
  cli.add_option("plan-out", "write the compiled plan artifact here", "");
  cli.add_option("plan-in",
                 "load the plan from this artifact instead of compiling",
                 "");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().empty()) {
    std::fputs(cli.usage().c_str(), stderr);
    return 1;
  }
  const std::string command = cli.positional().front();

  const std::string trace_path = cli.get("trace-out");
  const std::string metrics_path = cli.get("metrics-out");
  const bool profile = cli.get_flag("profile");
  if (profile) wsn::Profiler::instance().set_enabled(true);
  const std::string timeline_path = cli.get("timeline-out");
  if (!timeline_path.empty()) wsn::Timeline::instance().set_enabled(true);
  if (!trace_path.empty() && command == "sweep") {
    std::fprintf(stderr,
                 "--trace-out is per-run; sweep runs sources concurrently "
                 "(use --metrics-out / --profile there)\n");
    return 1;
  }
  wsn::EventSink sink;
  wsn::MetricsRegistry registry;
  wsn::Observer observer(trace_path.empty() ? nullptr : &sink, &registry);
  const bool observe = !trace_path.empty() || !metrics_path.empty();

  // Writes the requested observability artifacts, then forwards `code`.
  const auto finish = [&](int code) {
    if (!trace_path.empty()) {
      std::ofstream file(trace_path);
      if (!file) {
        std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        return 1;
      }
      if (trace_path.size() >= 6 &&
          trace_path.rfind(".jsonl") == trace_path.size() - 6) {
        wsn::write_events_jsonl(file, sink);
      } else {
        wsn::write_chrome_trace(file, sink);
      }
      std::printf("trace: %s (%llu events)\n", trace_path.c_str(),
                  static_cast<unsigned long long>(sink.total()));
    }
    if (!metrics_path.empty()) {
      std::ofstream file(metrics_path);
      if (!file) {
        std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
        return 1;
      }
      wsn::write_metrics_json(file, registry.scrape());
      std::printf("metrics: %s\n", metrics_path.c_str());
    }
    if (profile) {
      std::fputs(wsn::Profiler::instance().report_text().c_str(), stdout);
    }
    if (!timeline_path.empty()) {
      std::ofstream file(timeline_path);
      if (!file) {
        std::fprintf(stderr, "cannot write %s\n", timeline_path.c_str());
        return 1;
      }
      const auto threads = wsn::Timeline::instance().snapshot();
      if (timeline_path.size() >= 6 &&
          timeline_path.rfind(".jsonl") == timeline_path.size() - 6) {
        wsn::write_timeline_jsonl(file, threads);
      } else {
        wsn::write_timeline_perfetto(file, threads);
      }
      std::printf("timeline: %s\n", timeline_path.c_str());
    }
    return code;
  };

  const std::string engine = cli.get("engine");
  if (engine != "reference" && engine != "bulk") {
    std::fprintf(stderr, "unknown --engine %s (reference|bulk)\n",
                 engine.c_str());
    return 1;
  }
  if (engine == "bulk") {
    // Validate the whole flag surface BEFORE touching the mesh: at bulk
    // sizes nothing may be allocated until we know the run can proceed.
    if (command != "run") {
      std::fprintf(stderr,
                   "--engine bulk supports the run command only; sweep, viz "
                   "and pipeline need the materialized engine (drop "
                   "--engine or use --engine reference)\n");
      return 1;
    }
    if (cli.get("protocol") != "paper") {
      std::fprintf(stderr,
                   "--engine bulk implements the paper protocols only; "
                   "--protocol %s needs the materialized engine\n",
                   cli.get("protocol").c_str());
      return 1;
    }
    if (!cli.get("plan-cache").empty() || !cli.get("plan-in").empty() ||
        !cli.get("plan-out").empty()) {
      std::fprintf(stderr,
                   "--engine bulk compiles plans in memory; the plan store "
                   "flags (--plan-cache/--plan-in/--plan-out) need the "
                   "materialized engine\n");
      return 1;
    }
    wsn::SimOptions bulk_options;
    bulk_options.observer = observe ? &observer : nullptr;
    std::string why;
    if (!wsn::BulkSimulator::options_supported(bulk_options, &why)) {
      std::fprintf(stderr,
                   "--engine bulk: unsupported option (%s); drop "
                   "--trace-out/--metrics-out or use --engine reference\n",
                   why.c_str());
      return 1;
    }

    const wsn::ImplicitLattice lat = wsn::ImplicitLattice::make(
        cli.get("family"), static_cast<int>(cli.get_u64("width")),
        static_cast<int>(cli.get_u64("height")),
        static_cast<int>(cli.get_u64("depth")));
    wsn::NodeId bulk_src = 0;
    if (cli.get("src") == "center") {
      bulk_src = lat.central_node();
    } else {
      std::uint64_t value = 0;
      if (!wsn::parse_u64(cli.get("src"), value) ||
          value >= lat.num_nodes()) {
        std::fprintf(stderr, "bad --src\n");
        return 1;
      }
      bulk_src = static_cast<wsn::NodeId>(value);
    }

    wsn::ResolveReport report;
    const wsn::RelayPlan plan =
        wsn::implicit_paper_plan(lat, bulk_src, bulk_options, &report);
    wsn::BulkSimulator engine_sim(lat.num_nodes());
    const std::uint64_t progress_slots = cli.get_u64("progress-slots");
    if (progress_slots != 0) {
      engine_sim.set_progress(
          [](const wsn::BulkProgress& p) {
            std::fprintf(stderr,
                         "bulk: slot %llu, %llu slot(s) done, frontier "
                         "%zu, reached %zu/%zu (%.1f%%), %.2fs elapsed\n",
                         static_cast<unsigned long long>(p.slot),
                         static_cast<unsigned long long>(p.slots_done),
                         p.frontier, p.reached, p.total_nodes,
                         p.total_nodes != 0
                             ? 100.0 * static_cast<double>(p.reached) /
                                   static_cast<double>(p.total_nodes)
                             : 0.0,
                         p.elapsed_s);
          },
          progress_slots);
    }
    const wsn::BroadcastOutcome out =
        engine_sim.run(lat, plan, bulk_options);
    const wsn::BulkAuditReport audit =
        wsn::audit_bulk_outcome(lat, out, bulk_src);
    std::printf("%s, source %u, paper protocol (bulk engine)\n  %s\n"
                "  plan: compiled, repairs=%zu, rounds=%zu, unrepaired=%zu\n"
                "  audit: relay-mean ETR %.6f, conservation %s, coverage "
                "%s\n",
                lat.name().c_str(), bulk_src, out.stats.summary().c_str(),
                report.repairs, report.rounds, report.unrepaired,
                audit.relay_mean_etr,
                audit.conservation_ok() ? "ok" : "VIOLATED",
                audit.full_coverage() ? "full" : "PARTIAL");
    return finish(0);
  }

  const auto topo = wsn::make_mesh(cli.get("family"),
                                   static_cast<int>(cli.get_u64("width")),
                                   static_cast<int>(cli.get_u64("height")),
                                   static_cast<int>(cli.get_u64("depth")));
  wsn::NodeId src = 0;
  if (cli.get("src") == "center") {
    src = wsn::graph_center(*topo);
  } else {
    std::uint64_t value = 0;
    if (!wsn::parse_u64(cli.get("src"), value) ||
        value >= topo->num_nodes()) {
      std::fprintf(stderr, "bad --src\n");
      return 1;
    }
    src = static_cast<wsn::NodeId>(value);
  }

  wsn::SimOptions sim_options;
  sim_options.observer = observe ? &observer : nullptr;

  std::unique_ptr<wsn::PlanStore> store;
  if (!cli.get("plan-cache").empty()) {
    wsn::PlanStore::Config store_config;
    store_config.disk_dir = cli.get("plan-cache");
    store = std::make_unique<wsn::PlanStore>(store_config);
    if (store->disk() == nullptr || !store->disk()->ok()) {
      std::fprintf(stderr, "cannot open --plan-cache %s\n",
                   cli.get("plan-cache").c_str());
      return 1;
    }
    store->bind_metrics(registry);
  }

  // Builds (or loads, with --plan-in) the plan for the active command and
  // writes the --plan-out artifact.  Exits with a diagnostic on a bad
  // artifact -- a plan for the wrong topology must never reach the
  // simulator's contract checks.
  const auto obtain_plan = [&](const std::string& protocol) {
    PlanOutcome outcome;
    const std::string plan_in = cli.get("plan-in");
    if (!plan_in.empty()) {
      wsn::StoredPlan stored;
      const wsn::PlanSerdeStatus status =
          wsn::read_plan_file(plan_in, stored);
      if (status != wsn::PlanSerdeStatus::kOk) {
        std::fprintf(stderr, "--plan-in %s: %s\n", plan_in.c_str(),
                     std::string(wsn::to_string(status)).c_str());
        std::exit(1);
      }
      if (stored.plan.num_nodes() != topo->num_nodes()) {
        std::fprintf(stderr,
                     "--plan-in %s: plan is for %zu nodes but %s has %zu\n",
                     plan_in.c_str(), stored.plan.num_nodes(),
                     topo->name().c_str(), topo->num_nodes());
        std::exit(1);
      }
      outcome.plan = stored.plan.to_relay_plan();
      outcome.report = stored.report;
      outcome.has_report = true;
      outcome.origin = "artifact " + plan_in;
    } else {
      outcome = make_plan(protocol, *topo, src, store.get());
    }
    const std::string plan_out = cli.get("plan-out");
    if (!plan_out.empty()) {
      if (!wsn::write_plan_file(
              plan_out,
              wsn::StoredPlan{wsn::FlatRelayPlan::from(outcome.plan),
                              outcome.report})) {
        std::fprintf(stderr, "cannot write --plan-out %s\n",
                     plan_out.c_str());
        std::exit(1);
      }
      std::printf("plan artifact: %s\n", plan_out.c_str());
    }
    return outcome;
  };

  if (command == "run") {
    const PlanOutcome outcome = obtain_plan(cli.get("protocol"));
    const auto out = wsn::simulate_broadcast(*topo, outcome.plan, sim_options);
    std::printf("%s, source %u, %s protocol\n  %s\n  %s\n",
                topo->name().c_str(), src, cli.get("protocol").c_str(),
                out.stats.summary().c_str(), plan_line(outcome).c_str());
    return finish(0);
  }
  if (command == "sweep") {
    if (!cli.get("plan-in").empty() || !cli.get("plan-out").empty()) {
      std::fprintf(stderr,
                   "--plan-in/--plan-out are single-plan flags; sweep "
                   "compiles one plan per source (use --plan-cache)\n");
      return 1;
    }
    const std::string protocol = cli.get("protocol");
    std::size_t workers = 0;
    if (!wsn::parse_worker_flag(cli.get("workers"), workers)) {
      std::fprintf(stderr, "--workers must be a non-negative integer\n");
      return 1;
    }
    const wsn::SweepResult sweep =
        protocol == "paper"
            ? wsn::sweep_all_sources(*topo, sim_options, workers,
                                     store.get())
            : wsn::sweep_all_sources_with(
                  *topo,
                  [&](const wsn::Topology& t, wsn::NodeId s) {
                    return make_plan(protocol, t, s, store.get()).plan;
                  },
                  sim_options, workers);
    std::printf("%s, %zu sources, %s protocol\n", topo->name().c_str(),
                sweep.per_source.size(), protocol.c_str());
    std::printf("  best  src=%u  %s\n", sweep.best().source,
                sweep.best().stats.summary().c_str());
    std::printf("  worst src=%u  %s\n", sweep.worst().source,
                sweep.worst().stats.summary().c_str());
    std::printf("  mean power %s J, max delay %u, all reached: %s\n",
                wsn::sci(sweep.mean_energy()).c_str(), sweep.max_delay(),
                sweep.all_fully_reached() ? "yes" : "NO");
    if (store) {
      const auto mem = store->memory().stats();
      const auto facade = store->stats();
      std::printf("  plan store: %llu mem hits, %llu disk hits, "
                  "%llu compiles, %llu rejects\n",
                  static_cast<unsigned long long>(mem.hits),
                  static_cast<unsigned long long>(facade.disk_hits),
                  static_cast<unsigned long long>(facade.compiles),
                  static_cast<unsigned long long>(facade.disk_rejects));
    }
    return finish(0);
  }
  if (command == "viz") {
    const wsn::Grid2D* grid = grid2d_of(*topo);
    if (grid == nullptr) {
      std::fprintf(stderr, "viz renders the 2D families only\n");
      return 1;
    }
    const PlanOutcome outcome = obtain_plan(cli.get("protocol"));
    const auto out = wsn::simulate_broadcast(*topo, outcome.plan, sim_options);
    std::printf("%s\n%s\n", out.stats.summary().c_str(),
                plan_line(outcome).c_str());
    std::fputs(wsn::render_roles(*grid, outcome.plan, &out).c_str(), stdout);
    return finish(0);
  }
  if (command == "pipeline") {
    const PlanOutcome outcome = obtain_plan(cli.get("protocol"));
    const wsn::RelayPlan& plan = outcome.plan;
    const auto packets = static_cast<std::size_t>(cli.get_u64("packets"));
    const wsn::Slot period =
        wsn::min_pipeline_interval(*topo, plan, packets, 256);
    if (period == 0) {
      std::printf("no safe interval <= 256 slots\n");
    } else {
      std::printf("%s: %zu-packet pipeline period = %u slots\n",
                  topo->name().c_str(), packets, period);
      // Replay the found period once with the observer installed so the
      // trace/metrics artifacts show the steady-state pipeline.
      if (observe) {
        wsn::PipelineOptions pipeline_options;
        pipeline_options.packets = packets;
        pipeline_options.interval = period;
        pipeline_options.sim = sim_options;
        (void)wsn::simulate_pipeline(*topo, plan, pipeline_options);
      }
    }
    return finish(0);
  }

  std::fprintf(stderr, "unknown command '%s' (run|sweep|viz|pipeline)\n",
               command.c_str());
  return 1;
}
