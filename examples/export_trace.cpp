// Export a broadcast as machine-readable artifacts: the relay plan (CSV)
// and the full structured event trace in the src/obs schema -- JSONL for
// pandas/jq, plus an optional Chrome trace-event file that opens directly
// in about://tracing or https://ui.perfetto.dev.
//
//   $ export_trace [--family 2D-8] [--width 14] [--height 14]
//                  [--src-x 5] [--src-y 9]
//                  [--plan-out plan.csv] [--trace-out trace.jsonl]
//                  [--chrome-out trace_chrome.json] [--format jsonl|csv]
//
// --format csv writes the deprecated sim/trace_io CSV instead (kept so
// existing tooling keeps working; a reader for archived CSV traces lives
// in sim/trace_io.h).

#include <cstdio>
#include <fstream>
#include <string>

#include "common/cli.h"
#include "obs/event_sink.h"
#include "obs/export.h"
#include "obs/observer.h"
#include "protocol/registry.h"
#include "sim/trace_io.h"
#include "topology/factory.h"
#include "topology/grid2d.h"
#include "topology/mesh2d3.h"
#include "topology/mesh2d4.h"
#include "topology/mesh2d8.h"

int main(int argc, char** argv) {
  wsn::CliParser cli("export_trace", "dump a broadcast's plan + event trace "
                                     "(obs JSONL schema)");
  cli.add_option("family", "topology family (2D-3, 2D-4, 2D-8, 3D-6)",
                 "2D-8");
  cli.add_option("width", "mesh columns", "14");
  cli.add_option("height", "mesh rows", "14");
  cli.add_option("depth", "mesh planes (3D-6 only)", "1");
  cli.add_option("src", "source node id (0-based)", "116");
  cli.add_option("plan-out", "plan CSV path", "plan.csv");
  cli.add_option("trace-out", "event trace path", "trace.jsonl");
  cli.add_option("chrome-out",
                 "Chrome/Perfetto trace-event JSON path (empty = skip)", "");
  cli.add_option("format", "trace-out format: jsonl | csv (deprecated)",
                 "jsonl");
  if (!cli.parse(argc, argv)) return 1;

  const auto topo = wsn::make_mesh(cli.get("family"),
                                   static_cast<int>(cli.get_u64("width")),
                                   static_cast<int>(cli.get_u64("height")),
                                   static_cast<int>(cli.get_u64("depth")));
  const auto src = static_cast<wsn::NodeId>(cli.get_u64("src"));
  if (src >= topo->num_nodes()) {
    std::fprintf(stderr, "source id %u out of range (%zu nodes)\n", src,
                 topo->num_nodes());
    return 1;
  }
  const std::string format = cli.get("format");
  if (format != "jsonl" && format != "csv") {
    std::fprintf(stderr, "unknown --format %s (jsonl|csv)\n",
                 format.c_str());
    return 1;
  }

  const wsn::RelayPlan plan = wsn::paper_plan(*topo, src);
  wsn::EventSink sink;
  wsn::Observer observer(&sink);
  wsn::SimOptions options;
  options.record_collisions = true;
  options.observer = &observer;
  const wsn::BroadcastOutcome out =
      wsn::simulate_broadcast(*topo, plan, options);

  const auto write_file = [](const std::string& path, auto&& writer) {
    std::ofstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    writer(file);
    return true;
  };

  const std::string plan_path = cli.get("plan-out");
  const std::string trace_path = cli.get("trace-out");
  const std::string chrome_path = cli.get("chrome-out");
  if (!write_file(plan_path, [&](std::ostream& file) {
        wsn::write_plan_csv(file, *topo, plan);
      })) {
    return 1;
  }
  if (format == "csv") {
    std::fprintf(stderr,
                 "warning: --format csv is deprecated; the JSONL schema "
                 "(obs/export.h) is the supported format\n");
    if (!write_file(trace_path, [&](std::ostream& file) {
          wsn::write_legacy_trace_csv(file, *topo, sink);
        })) {
      return 1;
    }
  } else if (!write_file(trace_path, [&](std::ostream& file) {
               wsn::write_events_jsonl(file, sink);
             })) {
    return 1;
  }
  if (!chrome_path.empty() &&
      !write_file(chrome_path, [&](std::ostream& file) {
        wsn::write_chrome_trace(file, sink);
      })) {
    return 1;
  }

  std::printf("%s, source %u: %s\n", topo->name().c_str(), src,
              out.stats.summary().c_str());
  std::printf("wrote %s (%zu plan rows) and %s (%llu events, %llu "
              "collisions)\n",
              plan_path.c_str(), plan.num_nodes(), trace_path.c_str(),
              static_cast<unsigned long long>(sink.total()),
              static_cast<unsigned long long>(
                  sink.count(wsn::EventKind::kCollision)));
  if (!chrome_path.empty()) {
    std::printf("wrote %s -- open it in about://tracing or "
                "https://ui.perfetto.dev\n",
                chrome_path.c_str());
  }
  return 0;
}
