// Export a broadcast as machine-readable CSV: the relay plan and the full
// event trace (transmissions, first receptions, collisions) -- the ns-style
// artifacts downstream tooling plots or diffs.
//
//   $ export_trace [--family 2D-8] [--width 14] [--height 14]
//                  [--src-x 5] [--src-y 9]
//                  [--plan-out plan.csv] [--trace-out trace.csv]

#include <cstdio>
#include <fstream>
#include <string>

#include "common/cli.h"
#include "protocol/registry.h"
#include "sim/trace_io.h"
#include "topology/factory.h"
#include "topology/grid2d.h"
#include "topology/mesh2d3.h"
#include "topology/mesh2d4.h"
#include "topology/mesh2d8.h"

int main(int argc, char** argv) {
  wsn::CliParser cli("export_trace", "dump a broadcast's plan + event trace "
                                     "as CSV");
  cli.add_option("family", "topology family (2D-3, 2D-4, 2D-8, 3D-6)",
                 "2D-8");
  cli.add_option("width", "mesh columns", "14");
  cli.add_option("height", "mesh rows", "14");
  cli.add_option("depth", "mesh planes (3D-6 only)", "1");
  cli.add_option("src", "source node id (0-based)", "116");
  cli.add_option("plan-out", "plan CSV path", "plan.csv");
  cli.add_option("trace-out", "trace CSV path", "trace.csv");
  if (!cli.parse(argc, argv)) return 1;

  const auto topo = wsn::make_mesh(cli.get("family"),
                                   static_cast<int>(cli.get_u64("width")),
                                   static_cast<int>(cli.get_u64("height")),
                                   static_cast<int>(cli.get_u64("depth")));
  const auto src = static_cast<wsn::NodeId>(cli.get_u64("src"));
  if (src >= topo->num_nodes()) {
    std::fprintf(stderr, "source id %u out of range (%zu nodes)\n", src,
                 topo->num_nodes());
    return 1;
  }

  const wsn::RelayPlan plan = wsn::paper_plan(*topo, src);
  wsn::SimOptions options;
  options.record_collisions = true;
  const wsn::BroadcastOutcome out =
      wsn::simulate_broadcast(*topo, plan, options);

  const std::string plan_path = cli.get("plan-out");
  const std::string trace_path = cli.get("trace-out");
  {
    std::ofstream file(plan_path);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", plan_path.c_str());
      return 1;
    }
    wsn::write_plan_csv(file, *topo, plan);
  }
  {
    std::ofstream file(trace_path);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    wsn::write_trace_csv(file, *topo, out);
  }

  std::printf("%s, source %u: %s\n", topo->name().c_str(), src,
              out.stats.summary().c_str());
  std::printf("wrote %s (%zu plan rows) and %s (%zu tx, %zu collision "
              "events)\n",
              plan_path.c_str(), plan.num_nodes(), trace_path.c_str(),
              out.transmissions.size(), out.collision_events.size());
  return 0;
}
