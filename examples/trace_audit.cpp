// Audit a broadcast trace against the paper's invariants: energy ledger
// vs the First Order Radio Model, ETR vs the per-family optimum (Tables
// 1-2), delay vs Table 5, full coverage, and wavefront causality.
//
// Two modes:
//   file mode -- re-read a JSONL trace exported earlier (export_trace,
//   meshbcast_cli --trace-out, scenario_runner --trace-out):
//     $ trace_audit --trace trace.jsonl --family 2D-8 --width 14
//                   --height 14 --src 116
//   live mode (no --trace) -- run the paper broadcast on the requested
//   mesh and audit the ring buffer directly:
//     $ trace_audit --family 2D-4 --width 32 --height 16 --src 0
//
// Exit status: 0 when every check passes, 1 when the report carries
// violations, 2 on usage/IO errors.  --json-out writes the structured
// meshbcast.audit document for CI artifacts.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/cli.h"
#include "obs/audit/auditor.h"
#include "obs/audit/trace_reader.h"
#include "obs/event_sink.h"
#include "obs/observer.h"
#include "protocol/registry.h"
#include "topology/factory.h"

int main(int argc, char** argv) {
  wsn::CliParser cli("trace_audit",
                     "audit a broadcast trace against the paper's invariants");
  cli.add_option("trace", "JSONL trace to audit (empty = run live)", "");
  cli.add_option("family", "topology family (2D-3, 2D-4, 2D-8, 3D-6)",
                 "2D-8");
  cli.add_option("width", "mesh columns", "14");
  cli.add_option("height", "mesh rows", "14");
  cli.add_option("depth", "mesh planes (3D-6 only)", "1");
  cli.add_option("src", "source node id, or 'infer' (file mode only)",
                 "infer");
  cli.add_option("packet-bits", "packet size used by the run", "512");
  cli.add_option("json-out", "write the meshbcast.audit report here", "");
  cli.add_flag("charge-collisions",
               "the run charged RX energy on collision slots");
  cli.add_flag("no-expect-coverage",
               "fault-injected trace: list unreached nodes without failing "
               "the coverage check");
  if (!cli.parse(argc, argv)) return 2;

  const std::string family = cli.get("family");
  const auto topo = wsn::make_mesh(family,
                                   static_cast<int>(cli.get_u64("width")),
                                   static_cast<int>(cli.get_u64("height")),
                                   static_cast<int>(cli.get_u64("depth")));

  wsn::NodeId src = wsn::kInvalidNode;
  if (const std::string src_arg = cli.get("src"); src_arg != "infer") {
    src = static_cast<wsn::NodeId>(std::strtoul(src_arg.c_str(), nullptr, 10));
    if (src >= topo->num_nodes()) {
      std::fprintf(stderr, "source id %u out of range (%zu nodes)\n", src,
                   topo->num_nodes());
      return 2;
    }
  }

  wsn::AuditConfig config;
  config.packet_bits = cli.get_u64("packet-bits");
  config.charge_collisions = cli.get_flag("charge-collisions");
  config.source = src;
  config.expect_full_coverage = !cli.get_flag("no-expect-coverage");
  config.family = family;

  wsn::AuditReport report;
  const std::string trace_path = cli.get("trace");
  if (!trace_path.empty()) {
    wsn::TraceDocument doc;
    std::string error;
    if (!wsn::read_trace_file(trace_path, doc, &error)) {
      std::fprintf(stderr, "cannot read %s: %s\n", trace_path.c_str(),
                   error.c_str());
      return 2;
    }
    config.dropped_events = doc.dropped;
    config.declared_events = doc.declared_events;
    report = wsn::audit_trace(*topo, doc.events, config);
    std::printf("audited %s: %zu events\n", trace_path.c_str(),
                doc.events.size());
  } else {
    if (src == wsn::kInvalidNode) {
      std::fprintf(stderr, "live mode needs an explicit --src\n");
      return 2;
    }
    const wsn::RelayPlan plan = wsn::paper_plan(*topo, src);
    wsn::EventSink sink;
    wsn::Observer observer(&sink);
    wsn::SimOptions options;
    options.record_collisions = true;
    options.charge_collisions = config.charge_collisions;
    options.packet_bits = config.packet_bits;
    options.observer = &observer;
    const wsn::BroadcastOutcome out =
        wsn::simulate_broadcast(*topo, plan, options);
    config.stats = &out.stats;
    report = wsn::audit_sink(*topo, sink, config);
    std::printf("ran %s, source %u: %s\n", topo->name().c_str(), src,
                out.stats.summary().c_str());
  }

  std::printf("%s", wsn::audit_summary_text(report).c_str());

  if (const std::string json_path = cli.get("json-out"); !json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    wsn::write_audit_json(out, report);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return report.passed() ? 0 : 1;
}
