// Fault injection tour: break the paper's perfect medium and watch the
// relay plans degrade -- then recover.
//
//   $ fault_injection [--width 16] [--height 16] [--src 0] [--loss 0.1]
//                     [--seed 7] [--crash-node 40] [--crash-slot 3]
//                     [--outage 4]
//
// Three acts:
//   1. the paper's plan on a perfect medium (the baseline everyone quotes);
//   2. the same plan under seeded i.i.d. packet loss, bare and with the
//      repeat-k / echo-repair recovery policies (fault/recovery.h);
//   3. a node crash mid-broadcast, with and without recovery of the node.

#include <cstdio>

#include "common/cli.h"
#include "fault/models.h"
#include "fault/recovery.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/mesh2d4.h"

namespace {

void report(const char* label, const wsn::BroadcastOutcome& outcome) {
  std::printf("  %-22s %s\n", label, outcome.stats.summary().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  wsn::CliParser cli("fault_injection",
                     "broadcasts on a lossy, crashing 2D-4 mesh");
  cli.add_option("width", "mesh columns", "16");
  cli.add_option("height", "mesh rows", "16");
  cli.add_option("src", "source node id", "0");
  cli.add_option("loss", "i.i.d. per-link loss probability", "0.1");
  cli.add_option("seed", "fault seed", "7");
  cli.add_option("crash-node", "node to crash in act 3", "40");
  cli.add_option("crash-slot", "slot the crash hits", "3");
  cli.add_option("outage", "slots until the node recovers (0 = never)",
                 "4");
  if (!cli.parse(argc, argv)) return 1;

  const wsn::Mesh2D4 topo(static_cast<int>(cli.get_u64("width")),
                          static_cast<int>(cli.get_u64("height")));
  const auto src = static_cast<wsn::NodeId>(cli.get_u64("src"));
  const double loss = cli.get_f64("loss");
  const std::uint64_t seed = cli.get_u64("seed");
  const wsn::RelayPlan plan = wsn::paper_plan(topo, src);

  std::printf("%s, source %u, %zu planned transmissions\n\n",
              topo.name().c_str(), src, plan.planned_tx());

  // Act 1: the paper's perfect medium.
  std::printf("perfect medium:\n");
  report("paper plan", wsn::simulate_broadcast(topo, plan));

  // Act 2: i.i.d. packet loss, bare plan vs recovery policies.  Each run
  // uses the same seed, i.e. the identical loss pattern -- differences are
  // pure policy.
  std::printf("\ni.i.d. loss %.0f%% (seed %llu):\n", 100.0 * loss,
              static_cast<unsigned long long>(seed));
  for (const wsn::RecoveryPolicy policy :
       {wsn::RecoveryPolicy::kNone, wsn::RecoveryPolicy::kRepeatK,
        wsn::RecoveryPolicy::kEchoRepair}) {
    const wsn::RelayPlan recovered =
        wsn::apply_recovery(topo, plan, policy, 2);
    wsn::IidLossModel medium(loss, seed);
    wsn::SimOptions options;
    options.faults = &medium;
    report(std::string(wsn::to_string(policy)).c_str(),
           wsn::simulate_broadcast(topo, recovered, options));
  }

  // Act 3: crash one relay mid-broadcast.
  const auto victim = static_cast<wsn::NodeId>(cli.get_u64("crash-node"));
  const auto crash_slot = static_cast<wsn::Slot>(cli.get_u64("crash-slot"));
  const auto outage = static_cast<wsn::Slot>(cli.get_u64("outage"));
  if (victim < topo.num_nodes()) {
    std::printf("\nnode %u crashes at slot %u:\n", victim, crash_slot);
    for (const bool recovers : {false, true}) {
      const wsn::Slot up_at =
          recovers && outage > 0 ? crash_slot + outage : wsn::kNeverSlot;
      wsn::CrashScheduleModel crash(
          topo.num_nodes(), {wsn::CrashEvent{victim, crash_slot, up_at}});
      wsn::SimOptions options;
      options.faults = &crash;
      const wsn::RelayPlan recovered = wsn::apply_recovery(
          topo, plan, wsn::RecoveryPolicy::kEchoRepair, 2);
      report(recovers ? "echo-repair, recovers" : "bare plan, down forever",
             wsn::simulate_broadcast(
                 topo, recovers ? recovered : plan, options));
    }
  }
  return 0;
}
