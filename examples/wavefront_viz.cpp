// Watch a broadcast spread: per-slot frames of the wavefront on a 2D mesh.
//
//   $ wavefront_viz [--family 2D-8] [--width 14] [--height 14]
//                   [--src-x 5] [--src-y 9] [--max-frames 12]
//
// Each frame shows: '*' transmitting this slot, 'o' holding the message,
// 'x' a collision this slot, '.' still waiting.  Watching 2D-8 vs 2D-4 on
// the same grid makes the paper's diagonal-vs-axis argument (Fig. 6)
// visible: the 2D-8 wavefront squares out at Chebyshev speed.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/factory.h"
#include "topology/grid2d.h"
#include "topology/mesh2d3.h"
#include "topology/mesh2d4.h"
#include "topology/mesh2d8.h"

namespace {

const wsn::Grid2D* grid_of(const wsn::Topology& topo) {
  if (const auto* m = dynamic_cast<const wsn::Mesh2D3*>(&topo)) {
    return &m->grid();
  }
  if (const auto* m = dynamic_cast<const wsn::Mesh2D4*>(&topo)) {
    return &m->grid();
  }
  if (const auto* m = dynamic_cast<const wsn::Mesh2D8*>(&topo)) {
    return &m->grid();
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  wsn::CliParser cli("wavefront_viz", "per-slot frames of one broadcast");
  cli.add_option("family", "2D family (2D-3, 2D-4, 2D-8)", "2D-8");
  cli.add_option("width", "mesh columns", "14");
  cli.add_option("height", "mesh rows", "14");
  cli.add_option("src-x", "source column", "5");
  cli.add_option("src-y", "source row", "9");
  cli.add_option("max-frames", "stop after this many slots", "12");
  if (!cli.parse(argc, argv)) return 1;

  const auto topo = wsn::make_mesh(cli.get("family"),
                                   static_cast<int>(cli.get_u64("width")),
                                   static_cast<int>(cli.get_u64("height")));
  const wsn::Grid2D* grid = grid_of(*topo);
  if (grid == nullptr) {
    std::fprintf(stderr, "wavefront_viz only renders the 2D families\n");
    return 1;
  }
  const wsn::Vec2 src{static_cast<int>(cli.get_u64("src-x")),
                      static_cast<int>(cli.get_u64("src-y"))};
  if (!grid->contains(src)) {
    std::fprintf(stderr, "source outside the grid\n");
    return 1;
  }

  const wsn::RelayPlan plan = wsn::paper_plan(*topo, grid->to_id(src));
  wsn::SimOptions options;
  options.record_collisions = true;
  const wsn::BroadcastOutcome out =
      wsn::simulate_broadcast(*topo, plan, options);

  wsn::Slot last = 1;
  for (const wsn::TxRecord& rec : out.transmissions) {
    last = std::max(last, rec.slot);
  }
  const auto frames =
      std::min<wsn::Slot>(last, static_cast<wsn::Slot>(
                                    cli.get_u64("max-frames")));

  std::printf("%s, source %s -- %s\n", topo->name().c_str(),
              wsn::to_string(src).c_str(), out.stats.summary().c_str());
  for (wsn::Slot slot = 1; slot <= frames; ++slot) {
    std::vector<char> glyph(grid->num_nodes(), '.');
    for (wsn::NodeId v = 0; v < grid->num_nodes(); ++v) {
      if (out.first_rx[v] < slot) glyph[v] = 'o';
    }
    for (const wsn::CollisionRecord& ev : out.collision_events) {
      if (ev.slot == slot) glyph[ev.node] = 'x';
    }
    for (const wsn::TxRecord& rec : out.transmissions) {
      if (rec.slot == slot) glyph[rec.node] = '*';
    }
    std::printf("\nslot %u:\n", slot);
    for (int y = grid->n(); y >= 1; --y) {
      for (int x = 1; x <= grid->m(); ++x) {
        std::putchar(glyph[grid->to_id({x, y})]);
        if (x != grid->m()) std::putchar(' ');
      }
      std::putchar('\n');
    }
  }
  if (frames < last) {
    std::printf("\n(%u more slots until the broadcast completes)\n",
                last - frames);
  }
  return 0;
}
