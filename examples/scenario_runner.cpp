// Declarative batch runner: executes a scenario file (scenario/spec.h) on
// the bounded-queue engine (scenario/engine.h), streaming one JSONL record
// per job and printing the per-scenario envelope tables.
//
//   scenario_runner --scenario scenarios/paper.json --out results.jsonl
//   scenario_runner --scenario ... --out ... --resume      # after a kill
//   scenario_runner --scenario ... --workers 8 --plan-cache .plan-cache
//
// Ctrl-C cancels cooperatively (obs/heartbeat.h's SignalDrain): in-flight
// jobs finish, the results file keeps a valid resumable prefix, and a
// later --resume run completes it into a byte-identical file.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/cli.h"
#include "common/parallel.h"
#include "common/table.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/timeline.h"
#include "scenario/engine.h"
#include "scenario/spec.h"
#include "store/plan_store.h"

namespace {

std::string format_energy(double joules) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", joules);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsn;

  CliParser cli("scenario_runner",
                "Run a declarative scenario file on the batch engine");
  cli.add_option("scenario", "scenario spec file (JSON)", "");
  cli.add_option("out", "results stream (JSONL)", "results.jsonl");
  cli.add_flag("resume", "continue an interrupted run");
  cli.add_option("workers", "worker threads (0 = MESHBCAST_THREADS or "
                            "hardware)", "0");
  cli.add_option("queue-cap", "job queue capacity (0 = 2x workers)", "0");
  cli.add_option("plan-cache", "plan store artifact directory (empty = "
                               "memory-only)", "");
  cli.add_option("metrics-out", "write a metrics snapshot (JSON) here", "");
  cli.add_option("trace-out", "write each job's event trace (obs JSONL) "
                              "under this directory", "");
  cli.add_flag("audit", "run the invariant auditor (obs/audit) on every "
                        "simulated job");
  cli.add_option("heartbeat", "print a heartbeat record to stderr every N "
                              "emitted jobs (0 = off)", "0");
  cli.add_option("job-timeout-ms", "per-job watchdog deadline in ms: a job "
                                   "over it becomes an error record instead "
                                   "of stalling emission (0 = off)", "0");
  cli.add_option("timeline-out", "record per-thread span timelines and "
                                 "write the meshbcast.timeline JSONL here "
                                 "('' = off)", "");
  cli.add_option("timeseries-out", "sample metrics + worker utilization "
                                   "periodically into this meshbcast."
                                   "timeseries JSONL ('' = off)", "");
  cli.add_option("timeseries-period-ms", "sampling period for "
                                         "--timeseries-out", "100");
  if (!cli.parse(argc, argv)) return 2;

  const std::string spec_path = cli.get("scenario");
  if (spec_path.empty()) {
    std::cerr << "error: --scenario is required\n" << cli.usage();
    return 2;
  }

  std::size_t workers = 0;
  if (!parse_worker_flag(cli.get("workers"), workers)) {
    std::cerr << "error: --workers must be a non-negative integer\n";
    return 2;
  }

  ScenarioSpec spec;
  std::string error;
  if (!load_scenario_file(spec_path, spec, error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  if (const std::string trace_dir = cli.get("trace-out");
      !trace_dir.empty()) {
    for (ScenarioEntry& entry : spec.entries) {
      entry.outputs.trace_dir = trace_dir;
    }
  }
  JobMatrix matrix;
  if (!expand_jobs(std::move(spec), matrix, error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }

  PlanStore::Config store_config;
  store_config.disk_dir = cli.get("plan-cache");
  PlanStore store(store_config);
  MetricsRegistry metrics;
  store.bind_metrics(metrics);

  // The shared drain latch (obs/heartbeat.h): SIGINT/SIGTERM set a flag
  // the engine polls between jobs, so an interrupted run flushes a clean,
  // resumable checkpoint instead of tearing the stream mid-record.
  SignalDrain drain;

  EngineConfig config;
  config.workers = workers;
  config.queue_capacity = static_cast<std::size_t>(cli.get_u64("queue-cap"));
  config.resume = cli.get_flag("resume");
  config.store = &store;
  config.metrics = &metrics;
  config.cancel = drain.flag();
  config.audit = cli.get_flag("audit");
  config.heartbeat_every = static_cast<std::size_t>(cli.get_u64("heartbeat"));
  config.job_timeout_ms =
      static_cast<std::size_t>(cli.get_u64("job-timeout-ms"));
  if (config.heartbeat_every > 0) config.on_heartbeat = heartbeat_to_stderr;

  const std::string timeline_path = cli.get("timeline-out");
  if (!timeline_path.empty()) Timeline::instance().set_enabled(true);

  TelemetrySampler::Config sampler_config;
  sampler_config.period_ms =
      static_cast<std::size_t>(cli.get_u64("timeseries-period-ms"));
  sampler_config.metrics = &metrics;
  TelemetrySampler sampler(sampler_config);
  const std::string timeseries_path = cli.get("timeseries-out");
  if (!timeseries_path.empty()) {
    if (!sampler.start(timeseries_path)) {
      std::cerr << "error: cannot write " << timeseries_path << "\n";
      return 1;
    }
    config.sampler = &sampler;
  }

  const std::string out_path = cli.get("out");
  std::cout << "scenario '" << matrix.spec.name << "': "
            << matrix.jobs.size() << " jobs -> " << out_path << "\n";

  ScenarioEngine engine(matrix, config);
  const RunSummary summary = engine.run(out_path);
  sampler.stop();
  if (!summary.ok) {
    std::cerr << "error: " << summary.error << "\n";
    return 1;
  }

  if (!timeline_path.empty()) {
    // Workers are joined: the rings are quiesced, the snapshot complete.
    std::ofstream out(timeline_path, std::ios::trunc);
    if (!out) {
      std::cerr << "error: cannot write " << timeline_path << "\n";
      return 1;
    }
    write_timeline_jsonl(out, Timeline::instance().snapshot());
    std::cout << "timeline: " << timeline_path << "\n";
  }

  std::cout << "jobs: " << summary.emitted << "/" << summary.jobs_total
            << " emitted (" << summary.jobs_skipped << " resumed, "
            << summary.jobs_run << " run, " << summary.errors
            << " errors)\n";

  AsciiTable table({"Scenario", "Jobs", "Best src", "Best energy (J)",
                    "Worst src", "Worst energy (J)", "Mean (J)",
                    "Max delay", "Reach"});
  table.set_title("Per-scenario envelopes (best/worst over sources: the "
                  "paper's Tables 3-5 view)");
  for (const ScenarioEnvelope& env : summary.envelopes) {
    if (env.jobs == 0) continue;
    const bool any_ok = env.jobs > env.errors;
    table.add_row({env.scenario, std::to_string(env.jobs),
                   any_ok ? std::to_string(env.best_source) : "-",
                   any_ok ? format_energy(env.best_energy) : "-",
                   any_ok ? std::to_string(env.worst_source) : "-",
                   any_ok ? format_energy(env.worst_energy) : "-",
                   any_ok ? format_energy(env.mean_energy()) : "-",
                   any_ok ? std::to_string(env.max_delay) : "-",
                   env.errors > 0 ? ("errors:" + std::to_string(env.errors))
                                  : (env.all_reached ? "100%" : "partial")});
  }
  std::cout << table.render();

  const auto store_stats = store.stats();
  const auto mem = store.memory().stats();
  std::cout << "plan store: " << mem.hits << " memory hits, "
            << store_stats.disk_hits << " disk hits, "
            << store_stats.compiles << " compiles, " << store_stats.bypasses
            << " bypasses\n";

  const std::string metrics_path = cli.get("metrics-out");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::trunc);
    if (!out) {
      std::cerr << "error: cannot write " << metrics_path << "\n";
      return 1;
    }
    write_metrics_json(out, metrics.scrape());
  }

  if (summary.cancelled) {
    std::cout << "cancelled: resume with --resume to finish the remaining "
              << (summary.jobs_total - summary.emitted) << " jobs\n";
    return 130;
  }
  return summary.errors == 0 ? 0 : 3;
}
