// Precompiles relay plans into a plan-store directory.
//
//   $ warm_plans --cache-dir plans/ --family 2D-4 --width 32 --height 16
//
// Runs the paper protocol's planner (resolver included) for every source
// of the requested topology and persists each plan as a content-addressed
// artifact (store/plan_store.h).  Afterwards, any sweep or CLI run
// pointed at the same directory with --plan-cache resolves its plans from
// disk instead of recompiling -- the warm-cache recipe behind the
// EXPERIMENTS.md Table 3/4 reproduction.
//
// Pass --sources to warm a subset (e.g. just the graph center used by a
// single-run experiment); default is every node.  Re-running is cheap:
// already-present artifacts are disk hits, not recompiles.

#include <cstdio>
#include <string>

#include "common/cli.h"
#include "common/parallel.h"
#include "store/plan_store.h"
#include "topology/factory.h"

int main(int argc, char** argv) {
  wsn::CliParser cli("warm_plans",
                     "precompile relay plans into a plan-store directory");
  cli.add_option("cache-dir", "plan-store directory (created if missing)",
                 "");
  cli.add_option("family", "2D-3, 2D-4, 2D-8 or 3D-6", "2D-4");
  cli.add_option("width", "mesh columns", "32");
  cli.add_option("height", "mesh rows", "16");
  cli.add_option("depth", "mesh planes (3D-6)", "8");
  cli.add_option("sources",
                 "number of sources to warm, starting at node 0 "
                 "(0 = every node)",
                 "0");
  cli.add_option("workers", "worker threads (0 = all cores)", "0");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.get("cache-dir").empty()) {
    std::fprintf(stderr, "--cache-dir is required\n%s",
                 cli.usage().c_str());
    return 1;
  }

  const auto topo = wsn::make_mesh(cli.get("family"),
                                   static_cast<int>(cli.get_u64("width")),
                                   static_cast<int>(cli.get_u64("height")),
                                   static_cast<int>(cli.get_u64("depth")));

  std::size_t sources = cli.get_u64("sources");
  if (sources == 0 || sources > topo->num_nodes()) {
    sources = topo->num_nodes();
  }

  wsn::PlanStore::Config config;
  config.disk_dir = cli.get("cache-dir");
  wsn::PlanStore store(config);
  if (store.disk() == nullptr || !store.disk()->ok()) {
    std::fprintf(stderr, "cannot open --cache-dir %s\n",
                 cli.get("cache-dir").c_str());
    return 1;
  }

  wsn::parallel_for(
      0, sources,
      [&](std::size_t src) {
        (void)wsn::paper_plan_cached(*topo, static_cast<wsn::NodeId>(src),
                                     {}, store);
      },
      cli.get_u64("workers"));

  const wsn::PlanStore::Stats stats = store.stats();
  std::printf(
      "%s: warmed %zu sources into %s\n"
      "  %llu compiled, %llu already on disk, %llu artifacts in store\n",
      topo->name().c_str(), sources, cli.get("cache-dir").c_str(),
      static_cast<unsigned long long>(stats.compiles),
      static_cast<unsigned long long>(stats.disk_hits),
      static_cast<unsigned long long>(store.disk()->artifact_count()));
  return 0;
}
