// Quickstart: broadcast one packet across a 2D mesh with 4 neighbors and
// look at what happened.
//
//   $ quickstart [--width 16] [--height 16] [--src-x 6] [--src-y 8]
//
// This is the five-minute tour of the library: build a topology, ask the
// paper's protocol for a relay plan, run the slot-synchronous simulator,
// then read the stats and the relay map.

#include <cstdio>
#include <string>

#include "analysis/ascii_viz.h"
#include "common/cli.h"
#include "protocol/etr.h"
#include "protocol/ideal_model.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/mesh2d4.h"

int main(int argc, char** argv) {
  wsn::CliParser cli("quickstart",
                     "one broadcast on a 2D-4 mesh, start to finish");
  cli.add_option("width", "mesh columns", "16");
  cli.add_option("height", "mesh rows", "16");
  cli.add_option("src-x", "source column (1-based)", "6");
  cli.add_option("src-y", "source row (1-based)", "8");
  if (!cli.parse(argc, argv)) return 1;

  const int m = static_cast<int>(cli.get_u64("width"));
  const int n = static_cast<int>(cli.get_u64("height"));
  const wsn::Vec2 src{static_cast<int>(cli.get_u64("src-x")),
                      static_cast<int>(cli.get_u64("src-y"))};

  // 1. The network: an m×n grid, 0.5 m spacing, von Neumann neighborhoods.
  const wsn::Mesh2D4 topo(m, n);
  if (!topo.grid().contains(src)) {
    std::fprintf(stderr, "source %s outside the %dx%d grid\n",
                 wsn::to_string(src).c_str(), m, n);
    return 1;
  }

  // 2. The protocol: relay selection + scheduled retransmissions, computed
  //    offline from the topology (paper §3.1), then checked for 100%
  //    reachability by the resolver.
  wsn::ResolveReport repairs;
  const wsn::RelayPlan plan =
      wsn::paper_plan(topo, topo.grid().to_id(src), {}, &repairs);

  // 3. The broadcast: slot-synchronous medium with collision semantics and
  //    First Order Radio Model energy accounting.
  const wsn::BroadcastOutcome outcome = wsn::simulate_broadcast(topo, plan);

  std::printf("%s, source %s\n", topo.name().c_str(),
              wsn::to_string(src).c_str());
  std::printf("  %s\n", outcome.stats.summary().c_str());
  std::printf("  relays: %zu of %zu nodes (%zu retransmitting, %zu repairs "
              "added by the resolver)\n",
              plan.relay_count(), topo.num_nodes(),
              plan.retransmitters().size(), repairs.repairs);

  const wsn::EtrSummary etr = wsn::summarize_etr(
      topo, outcome, static_cast<std::size_t>(wsn::optimal_etr("2D-4").fresh),
      plan.source);
  std::printf("  ETR: mean %.3f, %.1f%% of relays at the optimal 3/4\n\n",
              etr.mean, 100.0 * etr.optimal_share());

  std::printf("relay map (S source, # relay, R retransmitter, . passive):\n%s",
              wsn::render_roles(topo.grid(), plan, &outcome).c_str());
  std::printf("\nfirst-transmission slots (the paper's sequence numbers):\n%s",
              wsn::render_slots(topo.grid(), outcome).c_str());
  return 0;
}
