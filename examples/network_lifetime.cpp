// Network lifetime under repeated broadcasting -- the motivation behind the
// paper's power accounting (sensor nodes have no plug-in power, §1).
//
//   $ network_lifetime [--family 2D-4] [--budget-uj 2000] [--rotate]
//
// Runs broadcast rounds until the network dies, with each node starting on
// a fixed energy budget.  Two source policies:
//   * fixed   -- the center node originates every broadcast (relay duty
//                concentrates on the same backbone and burns it out);
//   * rotate  -- the source rotates round-robin (LEACH-style duty spreading,
//                every node's relay role shifts with it).
// Reports rounds until the first node death and until the broadcast first
// fails to reach everyone.

#include <cstdio>
#include <string>

#include "common/cli.h"
#include "protocol/registry.h"
#include "radio/battery.h"
#include "sim/simulator.h"
#include "topology/factory.h"
#include "topology/graph_algos.h"

int main(int argc, char** argv) {
  wsn::CliParser cli("network_lifetime",
                     "broadcast rounds until the battery bank gives out");
  cli.add_option("family", "topology family (2D-3, 2D-4, 2D-8, 3D-6)",
                 "2D-4");
  cli.add_option("budget-uj", "initial charge per node in microjoules",
                 "2000");
  cli.add_option("max-rounds", "stop even if the network survives", "2000");
  cli.add_flag("rotate", "rotate the source round-robin instead of fixed");
  if (!cli.parse(argc, argv)) return 1;

  const std::string family = cli.get("family");
  const auto topo = wsn::make_paper_topology(family);
  const wsn::Joules budget = cli.get_f64("budget-uj") * 1e-6;
  const std::size_t max_rounds = cli.get_u64("max-rounds");
  const bool rotate = cli.get_flag("rotate");

  wsn::BatteryBank bank(topo->num_nodes(), budget);
  wsn::SimOptions options;
  options.battery = &bank;

  const wsn::NodeId center = wsn::graph_center(*topo);
  std::size_t first_death_round = 0;
  std::size_t first_failure_round = 0;

  std::size_t round = 1;
  for (; round <= max_rounds; ++round) {
    const wsn::NodeId source =
        rotate ? static_cast<wsn::NodeId>((round - 1) % topo->num_nodes())
               : center;
    if (!bank.alive(source)) break;  // a dead node cannot originate

    // Plans are recomputed per round: relay roles depend on the source.
    const wsn::RelayPlan plan = wsn::paper_plan(*topo, source);
    const wsn::BroadcastOutcome out =
        wsn::simulate_broadcast(*topo, plan, options);

    if (first_death_round == 0 &&
        bank.alive_count() < topo->num_nodes()) {
      first_death_round = round;
    }
    if (first_failure_round == 0 && !out.stats.fully_reached()) {
      first_failure_round = round;
      break;  // the network no longer delivers broadcasts
    }
  }

  std::printf("%s, %s source, %.0f uJ per node\n", topo->name().c_str(),
              rotate ? "rotating" : "fixed center",
              budget * 1e6);
  if (first_death_round == 0) {
    std::printf("  no node died in %zu rounds\n", round - 1);
  } else {
    std::printf("  first node death: round %zu\n", first_death_round);
  }
  if (first_failure_round == 0) {
    std::printf("  broadcast never failed (%zu rounds run)\n", round - 1);
  } else {
    std::printf("  first unreached broadcast: round %zu\n",
                first_failure_round);
  }
  std::printf("  nodes alive at the end: %zu / %zu, energy spent %.4f J\n",
              bank.alive_count(), topo->num_nodes(), bank.total_consumed());
  return 0;
}
