// Bench regression gate CLI (analysis/bench_gate.h).
//
//   $ bench_gate --baseline-dir bench/baselines --current-dir build
//       [--tolerance 0.5] [--strict] [--report gate_report.json] [files...]
//
// Compares every known BENCH_*.json (or the explicitly listed files)
// against its committed baseline of the same name.  Exit status: 0 when
// every gated metric is within tolerance (missing baselines only seed the
// trajectory), 1 on any regression, 2 on usage errors.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/bench_gate.h"
#include "common/cli.h"

int main(int argc, char** argv) {
  wsn::CliParser cli("bench_gate",
                     "compare BENCH_*.json against committed baselines");
  cli.add_option("baseline-dir", "directory of committed baselines",
                 "bench/baselines");
  cli.add_option("current-dir", "directory of freshly produced BENCH files",
                 ".");
  cli.add_option("tolerance",
                 "allowed fractional throughput drop before failing", "0.5");
  cli.add_option("report", "write the meshbcast.bench.gate JSON here ('' = skip)",
                 "");
  cli.add_flag("strict", "missing entries and files count as regressions");
  if (!cli.parse(argc, argv)) return 2;

  wsn::GateOptions options;
  options.tolerance = cli.get_f64("tolerance");
  options.strict = cli.get_flag("strict");
  if (options.tolerance < 0.0 || options.tolerance >= 1.0) {
    std::fprintf(stderr, "tolerance must be in [0, 1)\n");
    return 2;
  }

  std::vector<std::string> files = cli.positional();
  if (files.empty()) {
    files = {"BENCH_perf.json", "BENCH_pipeline.json",
             "BENCH_plan_cache.json", "BENCH_scenario.json",
             "BENCH_resilience.json", "BENCH_service.json",
             "BENCH_bulk.json"};
  }

  const std::filesystem::path baseline_dir = cli.get("baseline-dir");
  const std::filesystem::path current_dir = cli.get("current-dir");
  std::vector<wsn::GateReport> reports;
  for (const std::string& file : files) {
    const std::string name = std::filesystem::path(file).filename().string();
    wsn::GateReport report = wsn::gate_bench_files(
        (baseline_dir / name).string(), (current_dir / file).string(),
        options);
    std::printf("== %s ==\n%s", name.c_str(),
                wsn::gate_text(report).c_str());
    reports.push_back(std::move(report));
  }

  const wsn::GateReport merged = wsn::merge_reports(std::move(reports));
  const std::string report_path = cli.get("report");
  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", report_path.c_str());
      return 2;
    }
    wsn::write_gate_json(out, merged, options);
    std::printf("wrote %s\n", report_path.c_str());
  }

  std::printf("overall: %s (%zu regressions over %zu metrics)\n",
              merged.passed() ? "PASS" : "FAIL", merged.regressions(),
              merged.metrics.size());
  return merged.passed() ? 0 : 1;
}
