// meshbcastd: the long-running broadcast-planning service.
//
//   meshbcastd --port 0                       # loopback TCP, ephemeral
//   meshbcastd --unix /tmp/meshbcast.sock     # Unix-domain socket
//   meshbcastd --port 7970 --workers 8 --queue-cap 64
//              --plan-cache .plan-cache --heartbeat-ms 1000
//
// Speaks `meshbcast.rpc` v1 (src/service/rpc.h): plan / simulate /
// scenario / metrics / health / shutdown over 4-byte length-prefixed JSON
// frames.  Prints one line to stdout when ready --
//
//   meshbcastd listening on tcp:127.0.0.1:34787
//
// -- which scripts (the CI smoke job, loadgen wrappers) scrape for the
// address.  Drains gracefully on SIGINT/SIGTERM or the `shutdown` RPC:
// in-flight requests finish, every admitted request gets its response,
// then the process exits 0 with a final counter summary on stderr.
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "service/server.h"
#include "store/plan_store.h"

int main(int argc, char** argv) {
  using namespace wsn;

  CliParser cli("meshbcastd", "broadcast-planning service daemon");
  cli.add_option("port", "loopback TCP port (0 = ephemeral)", "0");
  cli.add_option("unix", "Unix-domain socket path (wins over --port)", "");
  cli.add_option("workers", "executor threads", "2");
  cli.add_option("queue-cap", "admission queue capacity (0 = 2x workers)",
                 "0");
  cli.add_option("max-request-bytes",
                 "per-frame request size cap in bytes", "1048576");
  cli.add_option("max-nodes", "largest topology a request may ask for",
                 "1048576");
  cli.add_option("scenario-workers-cap",
                 "cap on a scenario request's engine pool", "8");
  cli.add_option("plan-cache",
                 "plan store artifact directory (empty = memory-only)", "");
  cli.add_option("heartbeat-ms",
                 "liveness heartbeat period on stderr (0 = off)", "1000");
  if (!cli.parse(argc, argv)) return 2;

  PlanStore::Config store_config;
  store_config.disk_dir = cli.get("plan-cache");
  PlanStore store(store_config);
  MetricsRegistry metrics;
  store.bind_metrics(metrics);

  ServiceConfig config;
  config.unix_path = cli.get("unix");
  config.tcp_port = static_cast<int>(cli.get_u64("port"));
  config.workers = cli.get_u64("workers");
  config.queue_capacity = cli.get_u64("queue-cap");
  config.max_request_bytes = cli.get_u64("max-request-bytes");
  config.max_nodes = cli.get_u64("max-nodes");
  config.scenario_workers_cap = cli.get_u64("scenario-workers-cap");
  config.store = &store;
  config.metrics = &metrics;
  config.heartbeat_ms = cli.get_u64("heartbeat-ms");

  // The latch must exist before the listener so a signal during startup
  // still drains instead of killing the process mid-bind.
  SignalDrain drain;
  MeshbcastService service(std::move(config));
  std::string error;
  if (!service.start(error)) {
    std::fprintf(stderr, "meshbcastd: %s\n", error.c_str());
    return 1;
  }
  std::printf("meshbcastd listening on %s\n", service.address().c_str());
  std::fflush(stdout);

  service.wait(drain.flag());

  const MeshbcastService::Counters c = service.counters();
  const PlanStore::Stats s = store.stats();
  std::fprintf(stderr,
               "meshbcastd: drained. connections=%llu requests=%llu "
               "served=%llu errors=%llu sheds=%llu bad_frames=%llu "
               "compiles=%llu disk_hits=%llu\n",
               static_cast<unsigned long long>(c.connections),
               static_cast<unsigned long long>(c.requests),
               static_cast<unsigned long long>(c.served),
               static_cast<unsigned long long>(c.errors),
               static_cast<unsigned long long>(c.sheds),
               static_cast<unsigned long long>(c.bad_frames),
               static_cast<unsigned long long>(s.compiles),
               static_cast<unsigned long long>(s.disk_hits));
  return 0;
}
