// meshbcastd: the long-running broadcast-planning service.
//
//   meshbcastd --port 0                       # loopback TCP, ephemeral
//   meshbcastd --unix /tmp/meshbcast.sock     # Unix-domain socket
//   meshbcastd --port 7970 --workers 8 --queue-cap 64
//              --plan-cache .plan-cache --heartbeat-ms 1000
//   meshbcastd --port 0 --journal requests.wsnj   # persistent journal
//   meshbcastd --port 0 --timeline-out spans.jsonl  # tagged span dump
//
// Speaks `meshbcast.rpc` v1 (src/service/rpc.h): plan / simulate /
// scenario / metrics / health / shutdown over 4-byte length-prefixed JSON
// frames.  Prints one line to stdout when ready --
//
//   meshbcastd listening on tcp:127.0.0.1:34787
//
// -- which scripts (the CI smoke job, loadgen wrappers) scrape for the
// address.  Drains gracefully on SIGINT/SIGTERM or the `shutdown` RPC:
// in-flight requests finish, every admitted request gets its response,
// then the process exits 0 with a final counter summary on stderr.
//
// With --journal PATH every admitted-lane request is persisted to a
// WSNJRNL1 journal (src/service/journal.h).  On boot the daemon replays
// the journal -- truncating any torn tail from a crash -- and prints a
// greppable line to stderr:
//
//   meshbcastd: journal replayed 6300 records (served=6290 errors=4
//   sheds=6, max_seq=6300, torn_bytes=0)
//
// Query it offline with tools/meshbcast_journal.  --timeline-out enables
// the span timeline (request-tagged) and writes a `meshbcast.timeline`
// JSONL dump after the drain, for perf_report --request/--slowest.
#include <cstdio>
#include <fstream>
#include <string>

#include "common/cli.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "service/journal.h"
#include "service/server.h"
#include "store/plan_store.h"

int main(int argc, char** argv) {
  using namespace wsn;

  CliParser cli("meshbcastd", "broadcast-planning service daemon");
  cli.add_option("port", "loopback TCP port (0 = ephemeral)", "0");
  cli.add_option("unix", "Unix-domain socket path (wins over --port)", "");
  cli.add_option("workers", "executor threads", "2");
  cli.add_option("queue-cap", "admission queue capacity (0 = 2x workers)",
                 "0");
  cli.add_option("max-request-bytes",
                 "per-frame request size cap in bytes", "1048576");
  cli.add_option("max-nodes", "largest topology a request may ask for",
                 "1048576");
  cli.add_option("scenario-workers-cap",
                 "cap on a scenario request's engine pool", "8");
  cli.add_option("plan-cache",
                 "plan store artifact directory (empty = memory-only)", "");
  cli.add_option("heartbeat-ms",
                 "liveness heartbeat period on stderr (0 = off)", "1000");
  cli.add_option("journal",
                 "WSNJRNL1 request journal path (empty = no persistence)",
                 "");
  cli.add_option("journal-flush-ms",
                 "journal batch-fsync interval in milliseconds", "50");
  cli.add_option("timeline-out",
                 "write the request-tagged span timeline here at exit"
                 " (empty = timeline off)", "");
  if (!cli.parse(argc, argv)) return 2;

  PlanStore::Config store_config;
  store_config.disk_dir = cli.get("plan-cache");
  PlanStore store(store_config);
  MetricsRegistry metrics;
  store.bind_metrics(metrics);

  ServiceConfig config;
  config.unix_path = cli.get("unix");
  config.tcp_port = static_cast<int>(cli.get_u64("port"));
  config.workers = cli.get_u64("workers");
  config.queue_capacity = cli.get_u64("queue-cap");
  config.max_request_bytes = cli.get_u64("max-request-bytes");
  config.max_nodes = cli.get_u64("max-nodes");
  config.scenario_workers_cap = cli.get_u64("scenario-workers-cap");
  config.store = &store;
  config.metrics = &metrics;
  config.heartbeat_ms = cli.get_u64("heartbeat-ms");

  RequestJournal journal;
  const std::string journal_path = cli.get("journal");
  if (!journal_path.empty()) {
    RequestJournal::Config journal_config;
    journal_config.path = journal_path;
    journal_config.flush_interval_ms = cli.get_u64("journal-flush-ms");
    std::string journal_error;
    if (!journal.open(journal_config, journal_error)) {
      std::fprintf(stderr, "meshbcastd: journal: %s\n",
                   journal_error.c_str());
      return 1;
    }
    const JournalReplay& replay = journal.replay();
    std::fprintf(stderr,
                 "meshbcastd: journal replayed %llu records (served=%llu "
                 "errors=%llu sheds=%llu, max_seq=%llu, torn_bytes=%llu)\n",
                 static_cast<unsigned long long>(replay.records),
                 static_cast<unsigned long long>(replay.served),
                 static_cast<unsigned long long>(replay.errors),
                 static_cast<unsigned long long>(replay.sheds),
                 static_cast<unsigned long long>(replay.max_seq),
                 static_cast<unsigned long long>(replay.truncated_bytes));
    config.journal = &journal;
  }

  const std::string timeline_path = cli.get("timeline-out");
  if (!timeline_path.empty()) {
    Timeline::instance().set_enabled(true);
  }

  // The latch must exist before the listener so a signal during startup
  // still drains instead of killing the process mid-bind.
  SignalDrain drain;
  MeshbcastService service(std::move(config));
  std::string error;
  if (!service.start(error)) {
    std::fprintf(stderr, "meshbcastd: %s\n", error.c_str());
    return 1;
  }
  std::printf("meshbcastd listening on %s\n", service.address().c_str());
  std::fflush(stdout);

  service.wait(drain.flag());

  const MeshbcastService::Counters c = service.counters();
  const PlanStore::Stats s = store.stats();
  std::fprintf(stderr,
               "meshbcastd: drained. connections=%llu requests=%llu "
               "served=%llu errors=%llu sheds=%llu bad_frames=%llu "
               "compiles=%llu disk_hits=%llu\n",
               static_cast<unsigned long long>(c.connections),
               static_cast<unsigned long long>(c.requests),
               static_cast<unsigned long long>(c.served),
               static_cast<unsigned long long>(c.errors),
               static_cast<unsigned long long>(c.sheds),
               static_cast<unsigned long long>(c.bad_frames),
               static_cast<unsigned long long>(s.compiles),
               static_cast<unsigned long long>(s.disk_hits));
  if (!timeline_path.empty()) {
    Timeline::instance().set_enabled(false);
    std::ofstream out(timeline_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "meshbcastd: cannot write %s\n",
                   timeline_path.c_str());
      return 1;
    }
    write_timeline_jsonl(out, Timeline::instance().snapshot());
    std::fprintf(stderr, "meshbcastd: timeline written to %s\n",
                 timeline_path.c_str());
  }
  if (!journal_path.empty()) {
    journal.close();
    const JournalLifetime life = journal.lifetime();
    std::fprintf(stderr,
                 "meshbcastd: journal closed at %llu lifetime records "
                 "(served=%llu errors=%llu sheds=%llu)\n",
                 static_cast<unsigned long long>(life.records),
                 static_cast<unsigned long long>(life.served),
                 static_cast<unsigned long long>(life.errors),
                 static_cast<unsigned long long>(life.sheds));
  }
  return 0;
}
