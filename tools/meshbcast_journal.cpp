// meshbcast_journal: offline query CLI for WSNJRNL1 request journals.
//
//   meshbcast_journal --journal requests.wsnj --summary
//   meshbcast_journal --journal requests.wsnj --limit 20 --method plan
//   meshbcast_journal --journal requests.wsnj --min-ms 50 --outcome ok
//   meshbcast_journal --journal requests.wsnj --check
//   meshbcast_journal --journal requests.wsnj --verify-loadgen summary.json
//
// Modes (first match wins):
//   --check            validate the header and every record checksum;
//                      fails (exit 1) on a foreign file or a torn tail.
//                      A daemon restart truncates the tail first, so a
//                      post-restart --check passing is the crash-recovery
//                      acceptance gate.
//   --verify-loadgen F diff the journal against the client-side
//                      `meshbcast.loadgen` summary written by
//                      loadgen --summary-out: per-method ok/shed/error
//                      counts must match exactly (sheds included).
//   --summary          per-method x per-outcome counts plus latency
//                      percentiles over the served records.
//   (default)          list matching records, oldest first.
//
// Filters (listing and --summary): --method plan|simulate|scenario,
// --outcome ok|error|shed, --min-ms/--max-ms on total_ms, --limit N
// (listing only, 0 = all).
//
// Exit codes: 0 success, 1 check/verify failure, 2 usage error.
#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/json.h"
#include "service/journal.h"

namespace {

using namespace wsn;

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

struct Filter {
  bool has_method = false;
  JournalMethod method = JournalMethod::kPlan;
  bool has_outcome = false;
  JournalOutcome outcome = JournalOutcome::kOk;
  double min_ms = 0.0;
  double max_ms = 0.0;  // 0 = no upper bound

  [[nodiscard]] bool matches(const JournalRecord& r) const {
    if (has_method && r.method != method) return false;
    if (has_outcome && r.outcome != outcome) return false;
    if (r.total_ms < min_ms) return false;
    if (max_ms > 0.0 && r.total_ms > max_ms) return false;
    return true;
  }
};

/// Client-observed counts for one journal method, summed over the
/// loadgen phases that exercise it (warm_plan + cold_plan both land
/// under "plan" server-side).
struct ClientCounts {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t sheds = 0;
  std::uint64_t errors = 0;
};

int run_check(const std::string& path) {
  JournalReadResult result;
  std::string error;
  if (!read_journal_file(path, result, error)) {
    std::fprintf(stderr, "meshbcast_journal: %s\n", error.c_str());
    return 1;
  }
  if (result.torn_bytes != 0) {
    std::fprintf(stderr,
                 "meshbcast_journal: FAIL %s: %" PRIu64
                 " torn trailing byte(s) after %zu valid record(s)\n",
                 path.c_str(), result.torn_bytes, result.records.size());
    return 1;
  }
  std::uint64_t max_seq = 0;
  for (const JournalRecord& r : result.records)
    max_seq = std::max(max_seq, r.seq);
  std::printf("OK %s: %zu record(s), max_seq=%" PRIu64 ", no torn tail\n",
              path.c_str(), result.records.size(), max_seq);
  return 0;
}

int run_summary(const std::vector<JournalRecord>& records) {
  // method -> [ok, error, shed]
  std::map<std::string, std::array<std::uint64_t, 3>> by_method;
  std::vector<double> served_ms;
  for (const JournalRecord& r : records) {
    auto& row = by_method[std::string(to_string(r.method))];
    row[static_cast<std::size_t>(r.outcome)] += 1;
    if (r.outcome == JournalOutcome::kOk) served_ms.push_back(r.total_ms);
  }
  std::printf("%zu record(s)\n", records.size());
  std::printf("%-10s %8s %8s %8s\n", "method", "ok", "error", "shed");
  for (const auto& [method, row] : by_method) {
    std::printf("%-10s %8" PRIu64 " %8" PRIu64 " %8" PRIu64 "\n",
                method.c_str(), row[0], row[1], row[2]);
  }
  std::sort(served_ms.begin(), served_ms.end());
  std::printf("served latency: p50=%.3fms p95=%.3fms p99=%.3fms "
              "(over %zu served)\n",
              percentile_sorted(served_ms, 0.50),
              percentile_sorted(served_ms, 0.95),
              percentile_sorted(served_ms, 0.99), served_ms.size());
  return 0;
}

int run_list(const std::vector<JournalRecord>& records, std::uint64_t limit) {
  std::printf("%8s %10s %-10s %-6s %10s %9s %9s %9s  %s\n", "seq",
              "client_id", "method", "out", "total_ms", "queue_ms",
              "exec_ms", "emit_ms", "fingerprint");
  std::uint64_t shown = 0;
  for (const JournalRecord& r : records) {
    if (limit != 0 && shown >= limit) break;
    ++shown;
    std::printf("%8" PRIu64 " %10" PRIu64 " %-10s %-6s %10.3f %9.3f "
                "%9.3f %9.3f  %016" PRIx64 "%016" PRIx64 "%s\n",
                r.seq, r.client_id,
                std::string(to_string(r.method)).c_str(),
                std::string(to_string(r.outcome)).c_str(), r.total_ms,
                r.queue_ms, r.exec_ms, r.emit_ms, r.fp_hi, r.fp_lo,
                (r.flags & kJournalDrainRefused) != 0 ? " [drain]" : "");
  }
  std::printf("%" PRIu64 " of %zu record(s) shown\n", shown, records.size());
  return 0;
}

int run_verify(const std::vector<JournalRecord>& records,
               const std::string& summary_path) {
  std::ifstream file(summary_path);
  if (!file) {
    std::fprintf(stderr, "meshbcast_journal: cannot read %s\n",
                 summary_path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  JsonValue doc;
  std::string error;
  if (!parse_json(buffer.str(), doc, &error)) {
    std::fprintf(stderr, "meshbcast_journal: %s: %s\n", summary_path.c_str(),
                 error.c_str());
    return 2;
  }
  if (doc.string_or("schema", "") != "meshbcast.loadgen") {
    std::fprintf(stderr,
                 "meshbcast_journal: %s is not a meshbcast.loadgen summary\n",
                 summary_path.c_str());
    return 2;
  }
  const JsonValue* phases = doc.find("phases");
  if (phases == nullptr) {
    std::fprintf(stderr, "meshbcast_journal: %s has no phases array\n",
                 summary_path.c_str());
    return 2;
  }

  std::map<std::string, ClientCounts> client;
  for (const JsonValue& phase : phases->as_array()) {
    ClientCounts& c = client[phase.string_or("method", "plan")];
    c.requests += static_cast<std::uint64_t>(phase.number_or("requests", 0));
    c.ok += static_cast<std::uint64_t>(phase.number_or("ok", 0));
    c.sheds += static_cast<std::uint64_t>(phase.number_or("sheds", 0));
    c.errors += static_cast<std::uint64_t>(phase.number_or("errors", 0));
  }

  std::map<std::string, ClientCounts> server;
  for (const JournalRecord& r : records) {
    ClientCounts& s = server[std::string(to_string(r.method))];
    s.requests += 1;
    switch (r.outcome) {
      case JournalOutcome::kOk: s.ok += 1; break;
      case JournalOutcome::kShed: s.sheds += 1; break;
      case JournalOutcome::kError: s.errors += 1; break;
    }
  }

  bool ok = true;
  const auto check = [&ok](const std::string& method, const char* field,
                           std::uint64_t journal, std::uint64_t loadgen) {
    if (journal == loadgen) return;
    ok = false;
    std::fprintf(stderr,
                 "meshbcast_journal: MISMATCH %s.%s: journal=%" PRIu64
                 " loadgen=%" PRIu64 "\n",
                 method.c_str(), field, journal, loadgen);
  };
  for (const auto& [method, c] : client) {
    const ClientCounts s = server.count(method) != 0 ? server[method]
                                                     : ClientCounts{};
    check(method, "requests", s.requests, c.requests);
    check(method, "ok", s.ok, c.ok);
    check(method, "sheds", s.sheds, c.sheds);
    check(method, "errors", s.errors, c.errors);
  }
  for (const auto& [method, s] : server) {
    if (client.count(method) == 0 && s.requests != 0) {
      ok = false;
      std::fprintf(stderr,
                   "meshbcast_journal: MISMATCH %s: journal has %" PRIu64
                   " record(s) the loadgen summary never sent\n",
                   method.c_str(), s.requests);
    }
  }
  if (!ok) return 1;
  std::uint64_t total = 0;
  for (const auto& [method, c] : client) total += c.requests;
  std::printf("VERIFIED %s against journal: %" PRIu64
              " request(s) across %zu method(s) match exactly\n",
              summary_path.c_str(), total, client.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsn;

  CliParser cli("meshbcast_journal", "WSNJRNL1 request-journal query tool");
  cli.add_option("journal", "journal file to read", "");
  cli.add_option("method", "filter: plan | simulate | scenario", "");
  cli.add_option("outcome", "filter: ok | error | shed", "");
  cli.add_option("min-ms", "filter: total_ms at least this", "0");
  cli.add_option("max-ms", "filter: total_ms at most this (0 = no cap)",
                 "0");
  cli.add_option("limit", "listing: show at most N records (0 = all)", "0");
  cli.add_option("verify-loadgen",
                 "diff against a loadgen --summary-out file", "");
  cli.add_flag("check", "validate header and checksums, fail on torn tail");
  cli.add_flag("summary", "per-method outcome counts and percentiles");
  if (!cli.parse(argc, argv)) return 2;

  const std::string path = cli.get("journal");
  if (path.empty()) {
    std::fprintf(stderr, "meshbcast_journal: --journal is required\n");
    return 2;
  }

  Filter filter;
  const std::string method_text = cli.get("method");
  if (!method_text.empty()) {
    if (!parse_journal_method(method_text, filter.method)) {
      std::fprintf(stderr, "meshbcast_journal: bad --method %s\n",
                   method_text.c_str());
      return 2;
    }
    filter.has_method = true;
  }
  const std::string outcome_text = cli.get("outcome");
  if (!outcome_text.empty()) {
    if (!parse_journal_outcome(outcome_text, filter.outcome)) {
      std::fprintf(stderr, "meshbcast_journal: bad --outcome %s\n",
                   outcome_text.c_str());
      return 2;
    }
    filter.has_outcome = true;
  }
  filter.min_ms = cli.get_f64("min-ms");
  filter.max_ms = cli.get_f64("max-ms");

  if (cli.get_flag("check")) return run_check(path);

  JournalReadResult result;
  std::string error;
  if (!read_journal_file(path, result, error)) {
    std::fprintf(stderr, "meshbcast_journal: %s\n", error.c_str());
    return 1;
  }
  if (result.torn_bytes != 0) {
    std::fprintf(stderr,
                 "meshbcast_journal: warning: ignoring %" PRIu64
                 " torn trailing byte(s)\n",
                 result.torn_bytes);
  }
  std::vector<JournalRecord> records;
  records.reserve(result.records.size());
  for (const JournalRecord& r : result.records)
    if (filter.matches(r)) records.push_back(r);

  const std::string verify_path = cli.get("verify-loadgen");
  if (!verify_path.empty()) return run_verify(records, verify_path);
  if (cli.get_flag("summary")) return run_summary(records);
  return run_list(records, cli.get_u64("limit"));
}
