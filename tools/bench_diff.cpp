// Bench comparison CLI (analysis/bench_diff.h).
//
//   $ bench_diff A.json B.json [--tolerance 0.05]
//       [--json-out diff.json] [--fail-on-regression]
//
// Diffs two BENCH_*.json documents metric-by-metric: every numeric field
// of every result row, with a direction-aware verdict (improved /
// regressed / equal within tolerance / only on one side).  Reads as "how
// did B move relative to A" -- point A at the baseline or the pre-change
// run.  Exit status: 0, or 1 when --fail-on-regression is set and any
// metric regressed, 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <string>

#include "analysis/bench_diff.h"
#include "common/cli.h"

int main(int argc, char** argv) {
  wsn::CliParser cli("bench_diff",
                     "diff two BENCH_*.json documents metric-by-metric");
  cli.add_option("tolerance",
                 "fractional band treated as equal (|b/a - 1|)", "0.05");
  cli.add_option("json-out", "write the meshbcast.bench.diff JSON here"
                 " ('' = skip)", "");
  cli.add_flag("fail-on-regression", "exit 1 when any metric regressed");
  if (!cli.parse(argc, argv)) return 2;

  if (cli.positional().size() != 2) {
    std::fprintf(stderr, "bench_diff: expected exactly two files (A B)\n");
    return 2;
  }
  wsn::DiffOptions options;
  options.tolerance = cli.get_f64("tolerance");
  if (options.tolerance < 0.0 || options.tolerance >= 1.0) {
    std::fprintf(stderr, "tolerance must be in [0, 1)\n");
    return 2;
  }

  const wsn::DiffReport report = wsn::diff_bench_files(
      cli.positional()[0], cli.positional()[1], options);
  std::printf("%s", wsn::diff_text(report).c_str());

  const std::string json_path = cli.get("json-out");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    wsn::write_diff_json(out, report, options);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (cli.get_flag("fail-on-regression") && report.regressed() > 0) return 1;
  return 0;
}
