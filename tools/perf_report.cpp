// Wall-time attribution CLI (analysis/attribution.h).
//
//   $ perf_report --timeline run.timeline.jsonl
//       [--metrics metrics.json] [--json-out perf_report.json]
//       [--check] [--min-attribution 0.9]
//       [--request <id>] [--slowest N]
//
// Ingests a `meshbcast.timeline` v1 dump (scenario_runner
// --timeline-out), folds it into a per-thread wall-time decomposition --
// compute / queue-wait / idle / lock-wait / emission-stall /
// unattributed -- and names the dominant stall source across the worker
// threads.  With --metrics, the contention histograms from a
// `meshbcast.metrics` scrape are embedded in the JSON report so one
// artifact carries both the when (timeline) and the how-often
// (histograms).
//
// --check turns the report into a gate: exit 1 unless the timeline has
// at least one worker thread and every worker's attributed share reaches
// --min-attribution.  Exit status: 0 ok, 1 check failed, 2 usage/IO
// errors.
//
// Service timelines (meshbcastd --timeline-out) tag every span with the
// request id the daemon assigned; --request <id> prints that request's
// stage decomposition -- admission, queue wait, execution, emission --
// across the handler and worker threads, and --slowest N lists the N
// largest request wall extents so slow outliers can be picked out
// without knowing their ids up front.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/attribution.h"
#include "common/cli.h"
#include "common/json.h"

namespace {

/// Rebuilds the histogram part of a MetricsSnapshot from a
/// `meshbcast.metrics` scrape file -- enough for the percentile summary
/// the report embeds.  Returns false (with a note on stderr) on any
/// parse problem; the report then simply omits the histograms.
bool read_metrics_file(const std::string& path, wsn::MetricsSnapshot& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "perf_report: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  wsn::JsonValue doc;
  std::string error;
  if (!wsn::parse_json(buffer.str(), doc, &error) ||
      doc.string_or("schema", "") != "meshbcast.metrics") {
    std::fprintf(stderr, "perf_report: %s is not a meshbcast.metrics scrape\n",
                 path.c_str());
    return false;
  }
  const wsn::JsonValue* histograms = doc.find("histograms");
  if (histograms == nullptr || !histograms->is_object()) return true;
  for (const auto& [name, h] : histograms->as_object()) {
    if (!h.is_object()) continue;
    wsn::HistogramSnapshot snap;
    snap.name = name;
    if (const wsn::JsonValue* bounds = h.find("upper_bounds");
        bounds != nullptr && bounds->is_array()) {
      for (const wsn::JsonValue& b : bounds->as_array()) {
        if (b.is_number()) snap.upper_bounds.push_back(b.as_number());
      }
    }
    if (const wsn::JsonValue* buckets = h.find("buckets");
        buckets != nullptr && buckets->is_array()) {
      for (const wsn::JsonValue& b : buckets->as_array()) {
        std::uint64_t v = 0;
        if (b.to_u64(v)) snap.buckets.push_back(v);
      }
    }
    snap.count = static_cast<std::uint64_t>(h.number_or("count", 0));
    snap.sum = h.number_or("sum", 0.0);
    snap.min = h.number_or("min", 0.0);
    snap.max = h.number_or("max", 0.0);
    out.histograms.push_back(std::move(snap));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  wsn::CliParser cli("perf_report",
                     "attribute per-worker wall time from a span timeline");
  cli.add_option("timeline", "meshbcast.timeline JSONL dump to ingest", "");
  cli.add_option("metrics", "meshbcast.metrics scrape to embed ('' = none)",
                 "");
  cli.add_option("json-out", "write the meshbcast.perf_report JSON here"
                 " ('' = skip)", "");
  cli.add_option("min-attribution",
                 "with --check: minimum attributed share per worker", "0.9");
  cli.add_flag("check",
               "gate mode: fail unless workers exist and reach the"
               " attribution floor");
  cli.add_option("request",
                 "decompose one request id from a tagged service timeline"
                 " (0 = off)", "0");
  cli.add_option("slowest",
                 "list the N slowest tagged requests (0 = off)", "0");
  if (!cli.parse(argc, argv)) return 2;

  const std::string timeline_path = cli.get("timeline");
  if (timeline_path.empty()) {
    std::fprintf(stderr, "perf_report: --timeline is required\n");
    return 2;
  }
  const double min_attribution = cli.get_f64("min-attribution");
  if (min_attribution < 0.0 || min_attribution > 1.0) {
    std::fprintf(stderr, "min-attribution must be in [0, 1]\n");
    return 2;
  }

  std::vector<wsn::ParsedTimelineThread> threads;
  std::string error;
  if (!wsn::read_timeline_file(timeline_path, threads, &error)) {
    std::fprintf(stderr, "perf_report: %s\n", error.c_str());
    return 2;
  }

  // Request-centric modes short-circuit the per-thread report: they
  // answer "what happened to request N", not "where did the workers go".
  const std::uint64_t request_id = cli.get_u64("request");
  const std::uint64_t slowest = cli.get_u64("slowest");
  if (request_id != 0 || slowest != 0) {
    if (slowest != 0) {
      const auto extents = wsn::slowest_requests(
          threads, static_cast<std::size_t>(slowest));
      if (extents.empty()) {
        std::fprintf(stderr, "perf_report: no tagged request spans in %s\n",
                     timeline_path.c_str());
        return 1;
      }
      std::printf("slowest requests (%zu of the tagged set):\n",
                  extents.size());
      std::printf("  request      wall_ms  spans\n");
      for (const wsn::RequestExtent& e : extents) {
        std::printf("  %-10llu %9.2f  %5llu\n",
                    static_cast<unsigned long long>(e.tag),
                    static_cast<double>(e.wall_ns()) / 1e6,
                    static_cast<unsigned long long>(e.spans));
      }
    }
    if (request_id != 0) {
      const auto rows = wsn::spans_for_request(threads, request_id);
      std::printf("%s", wsn::request_breakdown_text(rows, request_id).c_str());
      if (rows.empty()) return 1;
    }
    return 0;
  }

  const wsn::AttributionReport report = wsn::attribute_timeline(threads);
  std::printf("%s", wsn::attribution_text(report).c_str());

  wsn::MetricsSnapshot metrics;
  bool have_metrics = false;
  const std::string metrics_path = cli.get("metrics");
  if (!metrics_path.empty()) {
    have_metrics = read_metrics_file(metrics_path, metrics);
  }

  const std::string json_path = cli.get("json-out");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 2;
    }
    wsn::write_attribution_json(out, report,
                                have_metrics ? &metrics : nullptr);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (cli.get_flag("check")) {
    if (report.workers == 0) {
      std::fprintf(stderr,
                   "perf_report: check failed: no worker threads in %s\n",
                   timeline_path.c_str());
      return 1;
    }
    if (report.min_worker_attributed_share < min_attribution) {
      std::fprintf(stderr,
                   "perf_report: check failed: min worker attribution "
                   "%.3f < %.3f\n",
                   report.min_worker_attributed_share, min_attribution);
      return 1;
    }
    std::printf("check: PASS (%zu workers, min attribution %.3f)\n",
                report.workers, report.min_worker_attributed_share);
  }
  return 0;
}
