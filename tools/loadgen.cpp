// loadgen: multi-connection load generator for meshbcastd.
//
//   meshbcastd --port 0 &                     # scrape the printed address
//   loadgen --address tcp:127.0.0.1:34787
//           --connections 4 --requests 2000 --out BENCH_service.json
//
// Drives three phases over C concurrent connections and reports each as
// a row in the `meshbcast.bench.service` document:
//
//   warm_plan  every request asks for the SAME plan fingerprint -- one
//              compile, then pure memory-tier hits (the cache fast path);
//   cold_plan  requests cycle the source id, so every request is a
//              distinct fingerprint (compile-dominated);
//   simulate   one-job simulate requests over the now-warm plan.
//
// Arrival is closed-loop by default (each connection fires as fast as
// responses return); `--rate R` switches to open-loop with a global
// target of R requests/second, which is how the shed path is exercised:
// outrun the queue and count the structured `overloaded` errors.
// `runs_per_sec` rows are gated by bench_gate; latency percentiles and
// `shed_rate` ride along as advisory metrics.
//
// After each phase one `meshbcast.loadgen` v1 JSON line is printed to
// stdout -- the client-observed view (sent/ok/shed/error counts and
// latency percentiles) that meshbcast_journal --verify-loadgen diffs
// against the server's journal.  --summary-out writes the same phases
// into one JSON document for scripting.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/json.h"
#include "common/string_util.h"
#include "service/client.h"
#include "service/rpc.h"

namespace {

using namespace wsn;

struct PhaseStats {
  std::uint64_t ok = 0;
  std::uint64_t sheds = 0;
  std::uint64_t errors = 0;
  double elapsed_s = 0.0;
  std::vector<double> latencies_ms;  // ok responses only

  [[nodiscard]] double percentile(double q) const {
    if (latencies_ms.empty()) return 0.0;
    const double pos =
        q * static_cast<double>(latencies_ms.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, latencies_ms.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return latencies_ms[lo] * (1.0 - frac) + latencies_ms[hi] * frac;
  }
  [[nodiscard]] double mean() const {
    if (latencies_ms.empty()) return 0.0;
    double sum = 0.0;
    for (const double v : latencies_ms) sum += v;
    return sum / static_cast<double>(latencies_ms.size());
  }
};

struct Workload {
  std::string name;
  /// Renders request k's payload.
  std::function<std::string(std::uint64_t k)> request;
};

/// Runs `requests` calls split over `connections` concurrent clients.
/// `rate` > 0 paces arrivals open-loop (request k is due at k/rate
/// seconds); 0 is closed-loop.
bool run_phase(const std::string& address, std::size_t connections,
               std::uint64_t requests, double rate,
               const Workload& workload, PhaseStats& stats,
               std::string& error) {
  std::vector<RpcClient> clients(connections);
  for (RpcClient& client : clients) {
    if (!client.connect(address, error)) return false;
  }
  std::vector<PhaseStats> per_thread(connections);
  std::atomic<bool> failed{false};
  std::string failure;
  std::mutex failure_mutex;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (std::size_t t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      PhaseStats& mine = per_thread[t];
      for (std::uint64_t k = t; k < requests;
           k += static_cast<std::uint64_t>(connections)) {
        if (failed.load(std::memory_order_relaxed)) return;
        if (rate > 0.0) {
          const auto due =
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              static_cast<double>(k) / rate));
          std::this_thread::sleep_until(due);
        }
        const std::string request = workload.request(k);
        const auto sent = std::chrono::steady_clock::now();
        JsonValue response;
        std::string call_error;
        if (!clients[t].call_json(request, response, call_error)) {
          failed.store(true, std::memory_order_relaxed);
          const std::lock_guard<std::mutex> lock(failure_mutex);
          failure = workload.name + ": " + call_error;
          return;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - sent)
                .count();
        const std::string kind = response.string_or("type", "");
        if (kind == "response") {
          mine.ok++;
          mine.latencies_ms.push_back(ms);
        } else {
          const JsonValue* err = response.find("error");
          const std::string code =
              err != nullptr ? err->string_or("code", "") : "";
          if (code == "overloaded") {
            mine.sheds++;
          } else {
            mine.errors++;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  stats.elapsed_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  if (failed.load(std::memory_order_relaxed)) {
    error = failure;
    return false;
  }
  for (PhaseStats& mine : per_thread) {
    stats.ok += mine.ok;
    stats.sheds += mine.sheds;
    stats.errors += mine.errors;
    stats.latencies_ms.insert(stats.latencies_ms.end(),
                              mine.latencies_ms.begin(),
                              mine.latencies_ms.end());
  }
  std::sort(stats.latencies_ms.begin(), stats.latencies_ms.end());
  return true;
}

/// The journal method the phase's requests land under server-side.
std::string_view method_for_phase(std::string_view phase) {
  return phase == "simulate" ? "simulate" : "plan";
}

/// One `meshbcast.loadgen` v1 phase object: the client-side view of a
/// phase, keyed the way the journal verifier wants it.
std::string phase_summary_json(const std::string& name,
                               const PhaseStats& stats) {
  const std::uint64_t total = stats.ok + stats.sheds + stats.errors;
  JsonWriter w;
  w.begin_object()
      .member("schema", "meshbcast.loadgen")
      .member("version", std::uint64_t{1})
      .member("phase", name)
      .member("method", method_for_phase(name))
      .member("requests", total)
      .member("ok", stats.ok)
      .member("sheds", stats.sheds)
      .member("errors", stats.errors)
      .member("elapsed_s", stats.elapsed_s)
      .member("runs_per_sec",
              stats.elapsed_s > 0.0
                  ? static_cast<double>(stats.ok) / stats.elapsed_s
                  : 0.0)
      .member("p50_ms", stats.percentile(0.50))
      .member("p95_ms", stats.percentile(0.95))
      .member("p99_ms", stats.percentile(0.99))
      .end_object();
  return std::move(w).str();
}

void append_row(JsonWriter& w, const std::string& name,
                const PhaseStats& stats) {
  const std::uint64_t total = stats.ok + stats.sheds + stats.errors;
  w.begin_object()
      .member("name", name)
      .member("requests", total)
      .member("ok", stats.ok)
      .member("sheds", stats.sheds)
      .member("errors", stats.errors)
      .member("elapsed_s", stats.elapsed_s)
      .member("runs_per_sec",
              stats.elapsed_s > 0.0
                  ? static_cast<double>(stats.ok) / stats.elapsed_s
                  : 0.0)
      .member("shed_rate", total > 0 ? static_cast<double>(stats.sheds) /
                                           static_cast<double>(total)
                                     : 0.0)
      .member("mean_ms", stats.mean())
      .member("p50_ms", stats.percentile(0.50))
      .member("p95_ms", stats.percentile(0.95))
      .member("p99_ms", stats.percentile(0.99))
      .end_object();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("loadgen", "load generator and bench for meshbcastd");
  cli.add_option("address",
                 "service address (tcp:<host>:<port> or unix:<path>)", "");
  cli.add_option("connections", "concurrent client connections", "4");
  cli.add_option("requests", "requests per plan phase", "2000");
  cli.add_option("sim-requests", "requests in the simulate phase", "200");
  cli.add_option("rate",
                 "open-loop arrival rate, requests/second (0 = closed-loop)",
                 "0");
  cli.add_option("family", "topology family for the workload", "2D-4");
  cli.add_option("dims", "topology dims as MxN", "32x16");
  cli.add_option("phases",
                 "comma list from {warm,cold,sim}", "warm,cold,sim");
  cli.add_option("out", "write meshbcast.bench.service JSON here ('' = "
                        "skip)", "BENCH_service.json");
  cli.add_option("summary-out",
                 "write the meshbcast.loadgen phase summaries here"
                 " ('' = skip)", "");
  cli.add_flag("shutdown", "send a shutdown RPC when done");
  if (!cli.parse(argc, argv)) return 2;

  const std::string address = cli.get("address");
  if (address.empty()) {
    std::fprintf(stderr, "loadgen: --address is required\n");
    return 2;
  }
  const std::size_t connections =
      std::max<std::size_t>(1, cli.get_u64("connections"));
  const std::uint64_t requests = cli.get_u64("requests");
  const std::uint64_t sim_requests = cli.get_u64("sim-requests");
  const double rate = cli.get_f64("rate");
  const std::string family = cli.get("family");
  const std::vector<std::string> dims_parts = split(cli.get("dims"), 'x');
  std::uint64_t dim_m = 0, dim_n = 0;
  if (dims_parts.size() != 2 || !parse_u64(dims_parts[0], dim_m) ||
      !parse_u64(dims_parts[1], dim_n) || dim_m == 0 || dim_n == 0) {
    std::fprintf(stderr, "loadgen: --dims must look like 32x16\n");
    return 2;
  }
  const std::uint64_t nodes = dim_m * dim_n;
  std::string dims_json = "[";
  dims_json += std::to_string(dim_m);
  dims_json += ',';
  dims_json += std::to_string(dim_n);
  dims_json += ']';

  const auto plan_request = [&](std::uint64_t source) {
    JsonWriter w;
    w.begin_object()
        .member("type", "plan")
        .member("id", source)
        .member("family", family)
        .key("dims")
        .raw(dims_json)
        .member("source", source % nodes)
        .end_object();
    return std::move(w).str();
  };
  const Workload workloads[] = {
      {"warm_plan", [&](std::uint64_t) { return plan_request(0); }},
      {"cold_plan", [&](std::uint64_t k) { return plan_request(k); }},
      {"simulate",
       [&](std::uint64_t k) {
         JsonWriter w;
         w.begin_object()
             .member("type", "simulate")
             .member("id", k)
             .member("name", "loadgen")
             .member("family", family)
             .key("dims")
             .raw(dims_json)
             .key("sources")
             .raw("[0]")
             .key("protocols")
             .raw("[\"paper\"]")
             .end_object();
         return std::move(w).str();
       }},
  };

  const std::string phases = cli.get("phases");
  const auto phase_on = [&](std::string_view name) {
    for (const std::string& part : split(phases, ',')) {
      if (trim(part) == name) return true;
    }
    return false;
  };

  std::vector<std::string> phase_summaries;
  JsonWriter doc;
  doc.begin_object()
      .member("schema", "meshbcast.bench.service")
      .member("version", std::uint64_t{1})
      .member("bench", "service_loadgen")
      .member("connections", static_cast<std::uint64_t>(connections))
      .member("rate", rate)
      .key("results")
      .begin_array();
  bool any = false;
  for (const Workload& workload : workloads) {
    const bool warm = workload.name == "warm_plan";
    const bool cold = workload.name == "cold_plan";
    if (warm && !phase_on("warm")) continue;
    if (cold && !phase_on("cold")) continue;
    if (!warm && !cold && !phase_on("sim")) continue;
    const std::uint64_t n = workload.name == "simulate" ? sim_requests
                                                        : requests;
    PhaseStats stats;
    std::string error;
    if (!run_phase(address, connections, n, rate, workload, stats, error)) {
      std::fprintf(stderr, "loadgen: %s\n", error.c_str());
      return 1;
    }
    std::printf(
        "%-10s ok=%llu sheds=%llu errors=%llu  %.1f req/s  "
        "p50=%.3fms p95=%.3fms p99=%.3fms\n",
        workload.name.c_str(), static_cast<unsigned long long>(stats.ok),
        static_cast<unsigned long long>(stats.sheds),
        static_cast<unsigned long long>(stats.errors),
        stats.elapsed_s > 0.0 ? static_cast<double>(stats.ok) /
                                    stats.elapsed_s
                              : 0.0,
        stats.percentile(0.50), stats.percentile(0.95),
        stats.percentile(0.99));
    const std::string summary = phase_summary_json(workload.name, stats);
    std::printf("%s\n", summary.c_str());
    phase_summaries.push_back(summary);
    append_row(doc, workload.name, stats);
    any = true;
  }
  doc.end_array().end_object();
  if (!any) {
    std::fprintf(stderr, "loadgen: no phases selected\n");
    return 2;
  }

  const std::string summary_out = cli.get("summary-out");
  if (!summary_out.empty()) {
    std::ofstream file(summary_out, std::ios::trunc);
    if (!file) {
      std::fprintf(stderr, "loadgen: cannot write %s\n",
                   summary_out.c_str());
      return 1;
    }
    JsonWriter w;
    w.begin_object()
        .member("schema", "meshbcast.loadgen")
        .member("version", std::uint64_t{1})
        .member("connections", static_cast<std::uint64_t>(connections))
        .member("rate", rate)
        .key("phases")
        .begin_array();
    for (const std::string& phase : phase_summaries) w.raw(phase);
    w.end_array().end_object();
    file << std::move(w).str() << '\n';
    std::printf("wrote %s\n", summary_out.c_str());
  }

  if (cli.get_flag("shutdown")) {
    RpcClient client;
    std::string error;
    JsonValue response;
    if (!client.connect(address, error) ||
        !client.call_json("{\"type\":\"shutdown\"}", response, error)) {
      std::fprintf(stderr, "loadgen: shutdown failed: %s\n", error.c_str());
      return 1;
    }
  }

  const std::string out = cli.get("out");
  if (!out.empty()) {
    std::ofstream file(out, std::ios::trunc);
    if (!file) {
      std::fprintf(stderr, "loadgen: cannot write %s\n", out.c_str());
      return 1;
    }
    file << doc.str() << '\n';
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
