// Regenerates paper Figure 9: the z-relay pattern of the 3D-6 broadcast --
// the R5 sublattice (black nodes) that forwards along the Z axis, plus the
// gray border relays that cover the cells the clipped lattice misses.
// Rendered for the paper's example source (6,8,k) on a 16×16 plane, then
// verified inside an 8×8×8 broadcast.

#include <cstdio>

#include "analysis/ascii_viz.h"
#include "geometry/lattice.h"
#include "protocol/mesh3d6_broadcast.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/mesh3d6.h"

int main() {
  const wsn::Vec2 src_xy{6, 8};

  std::printf("Figure 9: z-relay lattice for source (6,8,k) on a 16x16 "
              "plane\n");
  std::printf("(Z z-relay, b border relay waiting two slots, . covered "
              "passive cell)\n\n");
  const auto border = wsn::Mesh3d6Broadcast::border_relays(src_xy, 16, 16);
  for (int y = 16; y >= 1; --y) {
    for (int x = 1; x <= 16; ++x) {
      char glyph = '.';
      if (wsn::in_zrelay_lattice({x, y}, src_xy)) glyph = 'Z';
      for (wsn::Vec2 b : border) {
        if (b == wsn::Vec2{x, y}) glyph = 'b';
      }
      if (wsn::Vec2{x, y} == src_xy) glyph = 'S';
      std::putchar(glyph);
      if (x != 16) std::putchar(' ');
    }
    std::putchar('\n');
  }
  const auto uncovered = wsn::uncovered_by_zrelays(src_xy, 16, 16);
  std::printf("\nz-relays per plane: %zu of 256 (1/5 of the lattice); "
              "uncovered border cells: %zu; border relays: %zu\n\n",
              wsn::zrelay_lattice_in_grid(src_xy, 16, 16).size(),
              uncovered.size(), border.size());

  // Full 8x8x8 broadcast from (6,8,4): show the source plane and one
  // destination plane.
  const wsn::Mesh3D6 topo(8, 8, 8);
  const wsn::Grid3D& grid = topo.grid();
  const wsn::NodeId source = grid.to_id({6, 8, 4});
  wsn::ResolveReport report;
  const wsn::RelayPlan plan = wsn::paper_plan(topo, source, {}, &report);
  const wsn::BroadcastOutcome out = wsn::simulate_broadcast(topo, plan);
  std::printf("8x8x8 broadcast from (6,8,4): %s  (repairs: %zu)\n\n",
              out.stats.summary().c_str(), report.repairs);
  std::printf("source plane z=4 (2D-4 protocol + delayed z-relays):\n%s\n",
              wsn::render_roles_3d(grid, plan, 4, &out).c_str());
  std::printf("destination plane z=7 (z-relay columns + border relays):\n%s",
              wsn::render_roles_3d(grid, plan, 7, &out).c_str());
  return 0;
}
