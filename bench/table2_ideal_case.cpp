// Regenerates paper Table 2: the ideal case (every relay at optimal ETR,
// no collisions) for the 512-node evaluation configuration.  Our analytic
// model reproduces the published transmissions / receptions exactly
// (DESIGN.md §5 documents the closed forms).

#include <cstdio>

#include "analysis/report.h"

int main() {
  std::fputs(wsn::build_table2().render().c_str(), stdout);
  return 0;
}
