// Bulk-engine scaling bench: implicit lattice + SoA bitset slot kernel.
//
// The materialized Simulator tops out around 10^4-10^5 nodes (adjacency
// lists dominate memory and planning time); the bulk engine's shift-rule
// kernel is the path to the paper's protocols at 10^6+.  This bench tracks
// that scaling claim: schedule compilation (implicit_paper_plan, which
// runs the resolver's probe broadcasts on the bulk engine) and the
// instrumented slot kernel (bulk_simulate) on 2D-4 meshes from 4k to 2M
// nodes, with per-size throughput in nodes/s.
//
//   $ bulk_scale [--json-out BENCH_bulk.json]
//
// --json-out writes a meshbcast.bench JSON document (schema in
// EXPERIMENTS.md) with a bulk_plan/ and bulk_sim/ entry per mesh size;
// nodes/s follows from runs_per_sec times the node count in the name.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/cli.h"
#include "common/table.h"
#include "protocol/implicit_plan.h"
#include "sim/bulk/bulk_simulator.h"
#include "topology/implicit.h"

int main(int argc, char** argv) {
  wsn::CliParser cli("bulk_scale",
                     "bulk engine scaling: plan compile + slot kernel");
  cli.add_option("json-out", "meshbcast.bench JSON path ('' = skip)", "");
  if (!cli.parse(argc, argv)) return 1;

  // Iteration counts shrink with size so the 2M run stays CI-friendly;
  // the small mesh gets enough repeats to smooth scheduler noise.
  const struct {
    int m, n;
    std::size_t min_iters;
  } sizes[] = {{64, 64, 16}, {1000, 1000, 3}, {2048, 1024, 2}};

  wsn::AsciiTable table(
      {"Mesh", "nodes", "plan ms", "sim ms", "sim nodes/s"});
  table.set_title("Bulk engine scaling (2D-4, center source)");

  std::vector<wsn::bench::BenchResult> results;
  std::size_t sink = 0;  // keeps the timed bodies observable
  for (const auto& s : sizes) {
    const wsn::ImplicitLattice lat = wsn::ImplicitLattice::mesh2d4(s.m, s.n);
    const wsn::NodeId src = lat.central_node();
    const std::string dims =
        std::to_string(s.m) + "x" + std::to_string(s.n);

    results.push_back(wsn::bench::measure(
        "bulk_plan/2D-4/" + dims,
        [&] { sink += wsn::implicit_paper_plan(lat, src).tx_offsets.size(); },
        s.min_iters, /*min_seconds=*/0.0, /*max_iterations=*/64));

    const wsn::RelayPlan plan = wsn::implicit_paper_plan(lat, src);
    results.push_back(wsn::bench::measure(
        "bulk_sim/2D-4/" + dims,
        [&] { sink += wsn::bulk_simulate(lat, plan).stats.reached; },
        s.min_iters, /*min_seconds=*/0.0, /*max_iterations=*/64));

    const wsn::bench::BenchResult& plan_r = results[results.size() - 2];
    const wsn::bench::BenchResult& sim_r = results.back();
    const double nodes_per_sec =
        static_cast<double>(lat.num_nodes()) / (sim_r.mean_ms * 1e-3);
    char plan_ms[32], sim_ms[32], rate[32];
    std::snprintf(plan_ms, sizeof plan_ms, "%.3f", plan_r.mean_ms);
    std::snprintf(sim_ms, sizeof sim_ms, "%.3f", sim_r.mean_ms);
    std::snprintf(rate, sizeof rate, "%.2fM", nodes_per_sec / 1e6);
    table.add_row({dims, std::to_string(lat.num_nodes()), plan_ms, sim_ms,
                   rate});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\n'plan' compiles the schedule through the bulk resolver (probe "
      "broadcasts\nincluded); 'sim' is one fully instrumented broadcast "
      "over the compiled plan.\n(checksum %zu)\n",
      sink);

  const std::string json_path = cli.get("json-out");
  if (!json_path.empty()) {
    if (!wsn::bench::write_bench_json(json_path, "bulk_scale", results)) {
      return 1;
    }
    std::printf("wrote %s (%zu results)\n", json_path.c_str(),
                results.size());
  }
  return 0;
}
