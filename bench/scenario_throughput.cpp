// Scenario-engine throughput: jobs/sec of the bounded-queue worker pool.
//
// Runs a fixed in-memory job matrix (a full 12x8 source sweep plus a
// seeded/faulty mix -- the shapes scenarios/*.json are made of) at several
// worker counts, cold and warm plan cache, and reports jobs/sec, the mean
// queue wait, and the plan-cache hit rate.  The interesting trends: jobs/sec
// should scale with workers until the in-order collector serializes, queue
// wait should stay near zero (backpressure, not buffering), and the warm
// hit rate should approach 1 for cacheable protocols.
//
//   $ scenario_throughput [--workers-list 1,2,0] [--json-out BENCH_scenario.json]
//
// --json-out writes a meshbcast.bench.scenario JSON document (schema in
// EXPERIMENTS.md) for the CI artifact trail.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/table.h"
#include "scenario/engine.h"
#include "store/plan_store.h"

namespace {

constexpr const char* kBenchSpec =
    "{\"name\": \"bench\", \"scenarios\": ["
    "{\"name\": \"sweep\", \"family\": \"2D-4\", \"dims\": [12, 8],"
    " \"sources\": \"all\", \"protocols\": [\"paper\"]},"
    "{\"name\": \"mixed\", \"family\": \"2D-8\", \"dims\": [8, 6],"
    " \"sources\": [0, 27], \"protocols\": [\"paper\", \"cds\","
    " \"flooding\", \"gossip\"], \"seeds\": [1, 2], \"repeats\": 2},"
    "{\"name\": \"faulty\", \"family\": \"2D-4\", \"dims\": [8, 6],"
    " \"sources\": [0], \"protocols\": [\"paper\"],"
    " \"faults\": [{\"kind\": \"iid\", \"loss\": 0.1}],"
    " \"recovery\": [\"none\", \"repeat-k\"], \"seeds\": [1, 2, 3],"
    " \"repeats\": 4}]}";

struct ConfigResult {
  std::size_t workers = 0;
  double cold_jobs_per_sec = 0.0;
  double warm_jobs_per_sec = 0.0;
  double queue_wait_ms_mean = 0.0;  // of the warm run
  double cache_hit_rate = 0.0;      // memory tier, after the warm run
};

/// One output row per distinct resolved worker count.  A workers-list
/// like "1,2,0" resolves 0 to the core count, which on a small machine
/// collides with an explicit entry -- schema v1 then emitted duplicate
/// "workers":1 rows, and the bench gate's occurrence-suffixed keys
/// ("workers=1#2") changed meaning whenever the list or the machine did.
/// v2 dedupes by resolved count: repeats still *run* (same measurement
/// load) but aggregate into min/mean/max spread fields; the flat
/// cold/warm means keep their v1 names so the gate's keys stay stable.
struct AggregatedResult {
  std::size_t workers = 0;
  std::size_t runs = 0;
  double cold_min = 0.0, cold_mean = 0.0, cold_max = 0.0;
  double warm_min = 0.0, warm_mean = 0.0, warm_max = 0.0;
  double queue_wait_ms_mean = 0.0;  // mean over runs
  double cache_hit_rate = 0.0;      // mean over runs
};

std::vector<AggregatedResult> aggregate(
    const std::vector<ConfigResult>& results) {
  std::vector<AggregatedResult> out;
  for (const ConfigResult& r : results) {
    AggregatedResult* agg = nullptr;
    for (AggregatedResult& candidate : out) {
      if (candidate.workers == r.workers) {
        agg = &candidate;
        break;
      }
    }
    if (agg == nullptr) {
      out.emplace_back();
      agg = &out.back();
      agg->workers = r.workers;
      agg->cold_min = agg->cold_max = r.cold_jobs_per_sec;
      agg->warm_min = agg->warm_max = r.warm_jobs_per_sec;
    }
    agg->runs += 1;
    agg->cold_min = std::min(agg->cold_min, r.cold_jobs_per_sec);
    agg->cold_max = std::max(agg->cold_max, r.cold_jobs_per_sec);
    agg->cold_mean += r.cold_jobs_per_sec;
    agg->warm_min = std::min(agg->warm_min, r.warm_jobs_per_sec);
    agg->warm_max = std::max(agg->warm_max, r.warm_jobs_per_sec);
    agg->warm_mean += r.warm_jobs_per_sec;
    agg->queue_wait_ms_mean += r.queue_wait_ms_mean;
    agg->cache_hit_rate += r.cache_hit_rate;
  }
  for (AggregatedResult& agg : out) {
    const double runs = static_cast<double>(agg.runs);
    agg.cold_mean /= runs;
    agg.warm_mean /= runs;
    agg.queue_wait_ms_mean /= runs;
    agg.cache_hit_rate /= runs;
  }
  return out;
}

double timed_run(const wsn::JobMatrix& matrix, std::size_t workers,
                 wsn::PlanStore* store, const std::filesystem::path& out,
                 double* queue_wait_ms) {
  wsn::EngineConfig config;
  config.workers = workers;
  config.store = store;
  wsn::ScenarioEngine engine(matrix, config);
  const auto start = std::chrono::steady_clock::now();
  const wsn::RunSummary summary = engine.run(out.string());
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (!summary.ok) {
    std::fprintf(stderr, "run failed: %s\n", summary.error.c_str());
    return 0.0;
  }
  if (queue_wait_ms != nullptr) *queue_wait_ms = summary.queue_wait_ms_mean;
  return elapsed.count() > 0.0
             ? static_cast<double>(summary.jobs_run) / elapsed.count()
             : 0.0;
}

bool write_scenario_bench_json(const std::string& path, std::size_t jobs,
                               const std::vector<AggregatedResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\"schema\":\"meshbcast.bench.scenario\",\"version\":2,"
      << "\"bench\":\"scenario_throughput\",\"jobs\":" << jobs
      << ",\n \"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const AggregatedResult& r = results[i];
    if (i != 0) out << ",";
    char line[512];
    std::snprintf(line, sizeof line,
                  "\n  {\"workers\":%zu,\"runs\":%zu,"
                  "\"cold_jobs_per_sec\":%.3f,"
                  "\"cold_jobs_per_sec_min\":%.3f,"
                  "\"cold_jobs_per_sec_max\":%.3f,"
                  "\"warm_jobs_per_sec\":%.3f,"
                  "\"warm_jobs_per_sec_min\":%.3f,"
                  "\"warm_jobs_per_sec_max\":%.3f,"
                  "\"queue_wait_ms_mean\":%.6f,"
                  "\"cache_hit_rate\":%.6f}",
                  r.workers, r.runs, r.cold_mean, r.cold_min, r.cold_max,
                  r.warm_mean, r.warm_min, r.warm_max, r.queue_wait_ms_mean,
                  r.cache_hit_rate);
    out << line;
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  wsn::CliParser cli("scenario_throughput",
                     "scenario engine jobs/sec at several worker counts");
  cli.add_option("workers-list",
                 "comma-separated worker counts (0 = all cores)", "1,2,0");
  cli.add_option("json-out", "meshbcast.bench.scenario JSON path ('' = skip)",
                 "");
  if (!cli.parse(argc, argv)) return 1;

  wsn::JsonValue doc;
  std::string error;
  wsn::ScenarioSpec spec;
  wsn::JobMatrix matrix;
  if (!wsn::parse_json(kBenchSpec, doc, &error) ||
      !wsn::parse_scenario_spec(doc, spec, error) ||
      !wsn::expand_jobs(std::move(spec), matrix, error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  std::vector<std::size_t> worker_counts;
  for (const std::string& token :
       wsn::split(cli.get("workers-list"), ',')) {
    std::size_t value = 0;
    if (!wsn::parse_worker_flag(token, value)) {
      std::fprintf(stderr, "bad --workers-list entry '%s'\n", token.c_str());
      return 1;
    }
    worker_counts.push_back(value == 0 ? wsn::default_worker_count() : value);
  }

  const std::filesystem::path tmp =
      std::filesystem::temp_directory_path() / "wsn_scenario_throughput";
  std::filesystem::remove_all(tmp);
  std::filesystem::create_directories(tmp);

  wsn::AsciiTable table({"Workers", "runs", "cold jobs/s", "warm jobs/s",
                         "queue wait (ms)", "cache hit rate"});
  table.set_title("Scenario engine throughput (" +
                  std::to_string(matrix.jobs.size()) + " jobs)");

  std::vector<ConfigResult> results;
  for (const std::size_t workers : worker_counts) {
    wsn::PlanStore store;
    ConfigResult r;
    r.workers = workers;
    r.cold_jobs_per_sec = timed_run(matrix, workers, &store,
                                    tmp / "cold.jsonl", nullptr);
    r.warm_jobs_per_sec = timed_run(matrix, workers, &store,
                                    tmp / "warm.jsonl", &r.queue_wait_ms_mean);
    const auto stats = store.memory().stats();
    const std::size_t lookups = stats.hits + stats.misses;
    r.cache_hit_rate = lookups == 0 ? 0.0
                                    : static_cast<double>(stats.hits) /
                                          static_cast<double>(lookups);
    results.push_back(r);
  }
  const std::vector<AggregatedResult> aggregated = aggregate(results);
  for (const AggregatedResult& r : aggregated) {
    table.add_row({std::to_string(r.workers), std::to_string(r.runs),
                   wsn::fixed(r.cold_mean, 1), wsn::fixed(r.warm_mean, 1),
                   wsn::fixed(r.queue_wait_ms_mean, 3),
                   wsn::fixed(r.cache_hit_rate, 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::filesystem::remove_all(tmp);

  const std::string json_path = cli.get("json-out");
  if (!json_path.empty() &&
      !write_scenario_bench_json(json_path, matrix.jobs.size(),
                                 aggregated)) {
    return 1;
  }
  return 0;
}
