// Plan-store microbenchmarks: BENCH_plan_cache.json.
//
//   $ plan_cache [--width 32] [--height 16] [--json BENCH_plan_cache.json]
//
// Times the plan-store tiers against the thing they replace -- resolver-
// backed plan compilation -- on the paper's 32x16 2D-4 mesh:
//
//   compile_cold        paper_plan for every source, no cache
//   sweep_warm_mem      same set through a pre-warmed memory tier
//   sweep_warm_disk     fresh store each iteration over a warmed artifact
//                       directory (memory tier cold, disk tier hot)
//   serialize / deserialize / fingerprint   per-operation costs
//
// The headline number is the cold/warm-disk speedup printed at the end:
// the acceptance bar is >= 5x (EXPERIMENTS.md).  Output follows the
// meshbcast.bench schema from bench_json.h.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/cli.h"
#include "protocol/registry.h"
#include "store/plan_store.h"
#include "store/serialize.h"
#include "topology/factory.h"

namespace {

/// A scratch artifact directory under the system temp dir, removed on
/// destruction so repeated bench runs start cold.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("meshbcast_bench_" + tag);
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

}  // namespace

int main(int argc, char** argv) {
  wsn::CliParser cli("plan_cache", "plan-store performance benchmarks");
  cli.add_option("family", "2D-3, 2D-4, 2D-8 or 3D-6", "2D-4");
  cli.add_option("width", "mesh columns", "32");
  cli.add_option("height", "mesh rows", "16");
  cli.add_option("json", "bench JSON output path", "BENCH_plan_cache.json");
  if (!cli.parse(argc, argv)) return 1;

  const auto topo = wsn::make_mesh(cli.get("family"),
                                   static_cast<int>(cli.get_u64("width")),
                                   static_cast<int>(cli.get_u64("height")),
                                   /*depth=*/8);
  const std::size_t n = topo->num_nodes();
  const std::string label =
      cli.get("family") + "_" + cli.get("width") + "x" + cli.get("height");

  std::vector<wsn::bench::BenchResult> results;

  // --- per-operation costs -------------------------------------------------
  wsn::ResolveReport report;
  const wsn::StoredPlan sample{
      wsn::FlatRelayPlan::from(wsn::paper_plan(*topo, 0, {}, &report)),
      report};
  results.push_back(wsn::bench::measure("serialize/" + label, [&] {
    const std::string bytes = wsn::serialize_plan(sample);
    if (bytes.empty()) std::abort();
  }));

  const std::string bytes = wsn::serialize_plan(sample);
  results.push_back(wsn::bench::measure("deserialize/" + label, [&] {
    wsn::StoredPlan out;
    if (wsn::deserialize_plan(bytes, out) != wsn::PlanSerdeStatus::kOk) {
      std::abort();
    }
  }));

  results.push_back(wsn::bench::measure("fingerprint/" + label, [&] {
    (void)wsn::fingerprint_plan_request(*topo, 0, "paper", {});
  }));

  // --- full-sweep plan construction, cold vs warm --------------------------
  // Sweep-sized iterations are heavy, so run few of them; the spread
  // between cold and warm is orders of magnitude, not noise-sized.
  // Mirrors sweep_all_sources' plan acquisition exactly: the cached path
  // borrows the stored plan (shared_ptr), it does not copy it.
  const auto compile_all = [&](wsn::PlanStore* store) {
    for (std::size_t src = 0; src < n; ++src) {
      const auto source = static_cast<wsn::NodeId>(src);
      if (store != nullptr) {
        const auto stored = store->fetch_or_compile(
            *topo, source, "paper", {}, [&](wsn::ResolveReport& fresh) {
              return wsn::paper_plan(*topo, source, {}, &fresh);
            });
        if (stored->plan.num_nodes() != n) std::abort();
      } else {
        (void)wsn::paper_plan(*topo, source);
      }
    }
  };

  const wsn::bench::BenchResult cold = wsn::bench::measure(
      "compile_cold/" + label, [&] { compile_all(nullptr); },
      /*min_iterations=*/3, /*min_seconds=*/0.1);
  results.push_back(cold);

  wsn::PlanStore mem_store;
  compile_all(&mem_store);  // warm the memory tier
  results.push_back(wsn::bench::measure(
      "sweep_warm_mem/" + label, [&] { compile_all(&mem_store); },
      /*min_iterations=*/3, /*min_seconds=*/0.1));

  const TempDir tmp("plan_cache");
  {
    wsn::PlanStore::Config config;
    config.disk_dir = tmp.path.string();
    wsn::PlanStore warmer(config);
    compile_all(&warmer);  // warm the artifact directory
  }
  const wsn::bench::BenchResult warm_disk = wsn::bench::measure(
      "sweep_warm_disk/" + label,
      [&] {
        // A fresh store per iteration: every plan resolves from disk.
        wsn::PlanStore::Config config;
        config.disk_dir = tmp.path.string();
        wsn::PlanStore store(config);
        compile_all(&store);
      },
      /*min_iterations=*/3, /*min_seconds=*/0.1);
  results.push_back(warm_disk);

  for (const wsn::bench::BenchResult& r : results) {
    std::printf("%-28s %8zu iters  %12.3f runs/s  mean %10.4f ms\n",
                r.name.c_str(), r.iterations, r.runs_per_sec, r.mean_ms);
  }
  const double speedup =
      warm_disk.mean_ms > 0.0 ? cold.mean_ms / warm_disk.mean_ms : 0.0;
  std::printf("\n%zu-source plan construction: cold %.2f ms, warm disk "
              "%.2f ms -> %.1fx speedup\n",
              n, cold.mean_ms, warm_disk.mean_ms, speedup);

  if (!wsn::bench::write_bench_json(cli.get("json"), "plan_cache",
                                    results)) {
    return 1;
  }
  std::printf("wrote %s\n", cli.get("json").c_str());
  return 0;
}
