// Extension bench: sustainable broadcast throughput of the paper's
// protocols.
//
// A deployed WSN broadcasts continuously; the figure of merit beyond the
// paper's single-shot delay is the *pipeline period* -- the smallest
// injection interval at which a stream of packets still reaches every
// node.  The relay structure sets it: wavefronts `interval` slots apart
// interfere wherever a relay serves two packets at once.  A center and a
// corner source are reported per topology, with the single-shot delay for
// scale (period << delay means the protocol pipelines well).
//
//   $ pipeline_throughput [--json-out BENCH_pipeline.json]
//
// --json-out additionally self-times the period search per topology and
// writes a meshbcast.bench JSON document (schema in EXPERIMENTS.md).

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "common/cli.h"
#include "common/string_util.h"
#include "common/table.h"
#include "protocol/registry.h"
#include "sim/pipeline.h"
#include "topology/factory.h"
#include "topology/graph_algos.h"

namespace {

void add_row(wsn::AsciiTable& table, const wsn::Topology& topo,
             const std::string& family, const char* where, wsn::NodeId src) {
  const wsn::RelayPlan plan = wsn::paper_plan(topo, src);
  const auto single = wsn::simulate_broadcast(topo, plan);
  const wsn::Slot period =
      wsn::min_pipeline_interval(topo, plan, /*packets=*/3, /*limit=*/256);
  table.add_row({family, where, std::to_string(single.stats.delay),
                 period == 0 ? std::string("-") : std::to_string(period),
                 period == 0
                     ? std::string("-")
                     : wsn::fixed(static_cast<double>(single.stats.delay) /
                                      static_cast<double>(period),
                                  2)});
}

}  // namespace

int main(int argc, char** argv) {
  wsn::CliParser cli("pipeline_throughput",
                     "smallest safe injection interval per topology");
  cli.add_option("json-out", "meshbcast.bench JSON path ('' = skip)", "");
  if (!cli.parse(argc, argv)) return 1;

  wsn::AsciiTable table({"Topology", "source", "single-shot delay",
                         "pipeline period", "packets in flight"});
  table.set_title(
      "Pipeline throughput: smallest safe injection interval (3-packet "
      "stream)");

  std::vector<wsn::bench::BenchResult> results;
  const std::string json_path = cli.get("json-out");
  for (const std::string& family : wsn::regular_families()) {
    const auto topo = wsn::make_paper_topology(family);
    const wsn::NodeId center = wsn::graph_center(*topo);
    add_row(table, *topo, family, "center", center);
    add_row(table, *topo, family, "corner", 0);
    if (!json_path.empty()) {
      const wsn::RelayPlan plan = wsn::paper_plan(*topo, center);
      results.push_back(wsn::bench::measure(
          "pipeline_period/" + family,
          [&] {
            volatile wsn::Slot period = wsn::min_pipeline_interval(
                *topo, plan, /*packets=*/3, /*limit=*/256);
            (void)period;
          },
          /*min_iterations=*/4, /*min_seconds=*/0.2));
    }
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\n'packets in flight' = delay / period: how many broadcast "
      "wavefronts the mesh\nsustains concurrently before they interfere.\n");
  if (!json_path.empty()) {
    if (!wsn::bench::write_bench_json(json_path, "pipeline_throughput",
                                      results)) {
      return 1;
    }
    std::printf("wrote %s (%zu results)\n", json_path.c_str(),
                results.size());
  }
  return 0;
}
