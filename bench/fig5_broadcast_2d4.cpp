// Regenerates paper Figure 5: one-to-all broadcast on a 2D mesh with 4
// neighbors, source (6,8) on a 16×16 grid.  Prints the relay map (the
// figure's black nodes '#', gray retransmitters 'R') and the transmission
// sequence numbers, and checks the figure's stated retransmitter set.

#include <cstdio>

#include "analysis/ascii_viz.h"
#include "protocol/mesh2d4_broadcast.h"
#include "sim/simulator.h"
#include "topology/mesh2d4.h"

int main() {
  const wsn::Mesh2D4 topo(16, 16);
  const wsn::Grid2D& grid = topo.grid();
  const wsn::Vec2 src{6, 8};

  const wsn::Mesh2d4Broadcast protocol;
  const wsn::RelayPlan plan = protocol.plan(topo, grid.to_id(src));
  const wsn::BroadcastOutcome out = wsn::simulate_broadcast(topo, plan);

  std::printf("Figure 5: one-to-all broadcast, 2D-4 mesh 16x16, source %s\n",
              wsn::to_string(src).c_str());
  std::printf("  %s\n\n", out.stats.summary().c_str());
  std::printf("relay roles (S source, # relay, R retransmitter):\n%s\n",
              wsn::render_roles(grid, plan, &out).c_str());
  std::printf("transmission sequence numbers:\n%s\n",
              wsn::render_slots(grid, out).c_str());

  // The figure's gray nodes: (2,8), (5,8), (7,8), (10,8), (13,8), (16,8).
  std::printf("retransmitting nodes (paper lists 2,5,7,10,13,16 on row 8):");
  for (wsn::NodeId v : plan.retransmitters()) {
    std::printf(" %s", wsn::to_string(grid.to_coord(v)).c_str());
  }
  std::printf("\nreachability: %.1f%% (paper: 100%%)\n",
              100.0 * out.stats.reachability());
  return 0;
}
