// Extension bench: per-node energy balance of the broadcasting protocols.
//
// The paper's §1 notes that power-efficient regular-topology protocols
// "can not balance the power consumption of the relay nodes"; its own
// broadcast protocols inherit that trait.  This bench quantifies it per
// topology: the per-node energy spread of a single center-source broadcast
// versus the spread after rotating the source through every node (the
// LEACH-style remedy the paper cites as motivation).

#include <cstdio>

#include "analysis/energy_balance.h"
#include "common/string_util.h"
#include "common/table.h"
#include "protocol/registry.h"
#include "topology/factory.h"
#include "topology/graph_algos.h"

int main() {
  wsn::AsciiTable table({"Topology", "scenario", "mean(J)", "max(J)",
                         "peak/mean", "Gini"});
  table.set_title(
      "Per-node energy balance: fixed center source vs rotating source");

  for (const std::string& family : wsn::regular_families()) {
    const auto topo = wsn::make_paper_topology(family);
    wsn::SimOptions options;
    options.record_node_energy = true;

    const wsn::NodeId center = wsn::graph_center(*topo);
    const auto fixed = wsn::simulate_broadcast(
        *topo, wsn::paper_plan(*topo, center, options), options);
    const wsn::EnergyBalance single = wsn::energy_balance(fixed.node_energy);
    table.add_row({family, "one broadcast, center source",
                   wsn::sci(single.mean), wsn::sci(single.max),
                   wsn::fixed(single.peak_to_mean, 2),
                   wsn::fixed(single.gini, 3)});

    const wsn::EnergyBalance rotated =
        wsn::energy_balance(wsn::rotating_source_energy(*topo, options));
    table.add_row({family, "512 broadcasts, rotating source",
                   wsn::sci(rotated.mean), wsn::sci(rotated.max),
                   wsn::fixed(rotated.peak_to_mean, 2),
                   wsn::fixed(rotated.gini, 3)});
    table.add_rule();
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nA fixed source concentrates relay duty (high peak/mean, high "
      "Gini); rotating the\nsource spreads it -- the imbalance the paper's "
      "§1 attributes to non-rotating\nregular-topology protocols, "
      "quantified.\n");
  return 0;
}
