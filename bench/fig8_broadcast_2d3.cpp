// Regenerates paper Figure 8: one-to-all broadcast on a 2D mesh with 3
// neighbors (brick wall), source (10,7) on a 20×14 grid, including the
// region partition the relay rules R1-R4 are defined over.

#include <cstdio>

#include "analysis/ascii_viz.h"
#include "protocol/mesh2d3_broadcast.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/mesh2d3.h"

int main() {
  const wsn::Mesh2D3 topo(20, 14);
  const wsn::Grid2D& grid = topo.grid();
  const wsn::Vec2 src{10, 7};

  std::printf("Figure 8: one-to-all broadcast, 2D-3 mesh 20x14, source %s\n\n",
              wsn::to_string(src).c_str());
  std::printf("region partition (base nodes (10,5)/(10,8); 2 below, 3 "
              "above, 1 elsewhere):\n%s\n",
              wsn::render_regions_2d3(grid, src).c_str());

  const wsn::Mesh2d3Broadcast protocol;
  const wsn::RelayPlan base = protocol.plan(topo, grid.to_id(src));
  wsn::ResolveReport report;
  const wsn::RelayPlan plan =
      wsn::paper_plan(topo, grid.to_id(src), {}, &report);
  const wsn::BroadcastOutcome out = wsn::simulate_broadcast(topo, plan);

  std::printf("  %s  (resolver repairs: %zu)\n\n",
              out.stats.summary().c_str(), report.repairs);
  std::printf(
      "relay roles (S source, # relay, r/+ resolver-derived retransmissions "
      "-- the paper's gray nodes):\n%s\n",
      wsn::render_roles(grid, plan, &out, &base).c_str());
  std::printf("transmission sequence numbers:\n%s",
              wsn::render_slots(grid, out).c_str());
  std::printf("\nreachability: %.1f%% (paper: 100%%)\n",
              100.0 * out.stats.reachability());
  return 0;
}
