// Regenerates paper Table 5: maximum delay (slots) of the ideal case and
// of our protocols.  The ideal column is the graph diameter (a broadcast
// wavefront cannot outrun BFS); the paper's published column carries a ±1
// slot convention relative to the stated mesh sizes (EXPERIMENTS.md).

#include <cstdio>

#include "analysis/report.h"

int main() {
  std::fputs(wsn::build_table5().render().c_str(), stdout);
  return 0;
}
