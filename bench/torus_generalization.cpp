// Extension bench: broadcasts on wrap-around (torus) topologies.
//
// The paper closes by claiming its protocols "can be applied to the
// infrastructure wireless networks" of fixed stations; such fabrics often
// wrap.  The paper's own rules key off mesh borders, so tori are served by
// the generic CDS protocol -- and the comparison against the same-size
// bordered mesh isolates exactly how much of the broadcast cost is border
// handling: the torus needs fewer relays per node, has a smaller diameter,
// and its delay drops accordingly.

#include <cstdio>

#include "common/string_util.h"
#include "common/table.h"
#include "protocol/cds_broadcast.h"
#include "protocol/resolver.h"
#include "sim/simulator.h"
#include "topology/graph_algos.h"
#include "topology/mesh2d4.h"
#include "topology/mesh2d8.h"
#include "topology/torus.h"

namespace {

struct Row {
  double reach;
  std::size_t tx;
  double power;
  wsn::Slot delay;
};

Row run(const wsn::Topology& topo, wsn::NodeId src) {
  const wsn::CdsBroadcast cds;
  const wsn::RelayPlan plan =
      wsn::resolve_full_reachability(topo, cds.plan(topo, src));
  const auto out = wsn::simulate_broadcast(topo, plan);
  return {out.stats.reachability(), out.stats.tx, out.stats.total_energy(),
          out.stats.delay};
}

}  // namespace

int main() {
  wsn::AsciiTable table({"Topology", "diameter", "reach", "Tx", "P(J)",
                         "delay"});
  table.set_title(
      "CDS broadcast: 32x16 bordered meshes vs their torus variants "
      "(corner source)");

  const wsn::Mesh2D4 mesh4(32, 16);
  const wsn::Torus2D4 torus4(32, 16);
  const wsn::Mesh2D8 mesh8(32, 16);
  const wsn::Torus2D8 torus8(32, 16);

  const auto add = [&](const wsn::Topology& topo) {
    const Row row = run(topo, 0);
    table.add_row({topo.name(), std::to_string(wsn::diameter(topo)),
                   wsn::fixed(100.0 * row.reach, 1) + "%",
                   std::to_string(row.tx), wsn::sci(row.power),
                   std::to_string(row.delay)});
  };
  add(mesh4);
  add(torus4);
  add(mesh8);
  add(torus8);

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nWrapping removes every border: the diameter halves per axis and "
      "the corner-source\npenalty disappears (on a torus every source is a "
      "center).\n");
  return 0;
}
