// Regenerates paper Table 1: the optimal efficient-transmission ratio of
// each topology, plus our measured share of relay transmissions that
// actually hit the optimum on a center-source broadcast (quantifying "most
// of the relay nodes can achieve the optimal ETR", §3).

#include <cstdio>

#include "analysis/report.h"

int main() {
  std::fputs(wsn::build_table1().render().c_str(), stdout);
  return 0;
}
