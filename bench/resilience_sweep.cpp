// Resilience sweep: how the paper's relay plans degrade on an imperfect
// medium, and how much online recovery buys back.
//
//   $ resilience_sweep [--family 2D-4] [--loss-rates 0,0.02,0.05,0.1,0.2,0.3]
//                      [--trials 64] [--bursty] [--crash-prob 0.02]
//                      [--csv resilience.csv] [--json-out BENCH_resilience.json]
//
// --json-out times fixed small sweep/comparison workloads (independent of
// the display flags, so names stay comparable across commits) and writes a
// meshbcast.bench JSON document for tools/bench_gate.
//
// For every (loss rate x recovery policy) cell the harness runs seeded
// Monte-Carlo broadcasts (analysis/resilience.h) and prints degradation
// curves: mean reachability, delay, transmissions and energy.  The CSV
// output holds the full per-cell grid for external plotting.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/resilience.h"
#include "bench_json.h"
#include "common/cli.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/table.h"
#include "obs/profile.h"
#include "protocol/registry.h"
#include "store/plan_store.h"
#include "topology/factory.h"

namespace {

std::vector<double> parse_rates(const std::string& text) {
  std::vector<double> rates;
  for (const std::string& field : wsn::split(text, ',')) {
    double value = 0.0;
    if (!wsn::parse_f64(wsn::trim(field), value)) {
      std::fprintf(stderr, "malformed loss rate: '%s'\n", field.c_str());
      std::exit(1);
    }
    rates.push_back(value);
  }
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  wsn::CliParser cli("resilience_sweep",
                     "Monte-Carlo degradation curves under fault injection");
  cli.add_option("family", "topology family (2D-3, 2D-4, 2D-8, 3D-6)",
                 "2D-4");
  cli.add_option("src", "source node id", "0");
  cli.add_option("loss-rates", "comma-separated mean link loss rates",
                 "0,0.02,0.05,0.1,0.2,0.3");
  cli.add_option("trials", "Monte-Carlo trials per cell", "64");
  cli.add_option("repeat-k", "repetition factor of the repeat-k policy",
                 "2");
  cli.add_flag("bursty", "Gilbert-Elliott bursty loss instead of i.i.d.");
  cli.add_option("burst-len", "mean bad-burst length (bursty only)", "4");
  cli.add_option("crash-prob", "per-node crash probability per trial", "0");
  cli.add_option("crash-horizon", "crash slots drawn from [1, horizon]",
                 "32");
  cli.add_option("crash-outage", "outage length in slots (0 = permanent)",
                 "0");
  cli.add_option("seed", "master seed", "24083");
  cli.add_option("csv", "CSV output path ('-' = stdout, '' = none)", "");
  cli.add_option("json-out", "meshbcast.bench JSON path ('' = skip)", "");
  cli.add_option("workers",
                 "worker threads (flag > MESHBCAST_THREADS > hardware)",
                 "0");
  cli.add_option("plan-cache",
                 "plan-store directory; the baseline plan compile goes "
                 "through the cache",
                 "");
  cli.add_flag("profile", "print the profiling-span report");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.get_flag("profile")) {
    wsn::Profiler::instance().set_enabled(true);
  }

  const auto topo = wsn::make_paper_topology(cli.get("family"));
  const auto src = static_cast<wsn::NodeId>(cli.get_u64("src"));
  wsn::RelayPlan plan;
  if (const std::string cache_dir = cli.get("plan-cache");
      !cache_dir.empty()) {
    // The Monte-Carlo trials themselves inject faults and are never
    // cacheable; only the fault-free baseline plan compile is.
    wsn::PlanStore::Config store_config;
    store_config.disk_dir = cache_dir;
    wsn::PlanStore store(store_config);
    if (store.disk() == nullptr || !store.disk()->ok()) {
      std::fprintf(stderr, "cannot open --plan-cache %s\n",
                   cache_dir.c_str());
      return 1;
    }
    wsn::PlanStore::Origin origin = wsn::PlanStore::Origin::kCompiled;
    plan = wsn::paper_plan_cached(*topo, src, {}, store, nullptr, &origin);
    std::printf("plan: %s\n", std::string(wsn::to_string(origin)).c_str());
  } else {
    plan = wsn::paper_plan(*topo, src);
  }

  wsn::ResilienceConfig config;
  config.loss_rates = parse_rates(cli.get("loss-rates"));
  config.trials = cli.get_u64("trials");
  config.repeat_k = static_cast<unsigned>(cli.get_u64("repeat-k"));
  config.bursty = cli.get_flag("bursty");
  config.burst_len = cli.get_f64("burst-len");
  config.crash_prob = cli.get_f64("crash-prob");
  config.crash_horizon = static_cast<wsn::Slot>(cli.get_u64("crash-horizon"));
  config.crash_outage = static_cast<wsn::Slot>(cli.get_u64("crash-outage"));
  config.seed = cli.get_u64("seed");
  if (!wsn::parse_worker_flag(cli.get("workers"), config.workers)) {
    std::fprintf(stderr, "--workers must be a non-negative integer\n");
    return 1;
  }

  const wsn::ResilienceSweep sweep =
      wsn::run_resilience_sweep(*topo, plan, config);

  wsn::AsciiTable table({"loss", "policy", "planned Tx", "reach mean",
                         "reach min", "100% share", "delay", "energy (J)"});
  table.set_title(sweep.topology + ", source " + std::to_string(src) +
                  ", " + std::to_string(config.trials) + " trials/cell" +
                  (config.bursty ? ", bursty" : ", i.i.d.") +
                  (config.crash_prob > 0.0
                       ? ", crash-prob " + wsn::fixed(config.crash_prob, 3)
                       : ""));
  double last_rate = -1.0;
  for (const wsn::ResilienceCell& cell : sweep.cells) {
    if (cell.loss_rate != last_rate && last_rate >= 0.0) table.add_rule();
    last_rate = cell.loss_rate;
    table.add_row({wsn::fixed(cell.loss_rate, 2),
                   std::string(wsn::to_string(cell.policy)),
                   std::to_string(cell.planned_tx),
                   wsn::fixed(100.0 * cell.mean_reachability, 1) + "%",
                   wsn::fixed(100.0 * cell.min_reachability, 1) + "%",
                   wsn::fixed(100.0 * cell.full_reach_share, 1) + "%",
                   wsn::fixed(cell.mean_delay, 1),
                   wsn::sci(cell.mean_energy)});
  }
  std::printf("%s", table.render().c_str());

  const std::string csv_path = cli.get("csv");
  if (csv_path == "-") {
    sweep.write_csv(std::cout);
  } else if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
      return 1;
    }
    sweep.write_csv(out);
    std::printf("\nwrote %zu cells to %s\n", sweep.cells.size(),
                csv_path.c_str());
  }
  // Timed bench entries use a fixed workload (not the display flags) so the
  // tracked metric means the same thing on every commit.
  const std::string json_path = cli.get("json-out");
  if (!json_path.empty()) {
    wsn::ResilienceConfig bench_config;
    bench_config.loss_rates = {0.1, 0.3};
    bench_config.trials = 16;
    bench_config.seed = 24083;
    bench_config.workers = config.workers;

    std::vector<wsn::bench::BenchResult> results;
    results.push_back(wsn::bench::measure("resilience_sweep/iid", [&] {
      (void)wsn::run_resilience_sweep(*topo, plan, bench_config);
    }));
    bench_config.bursty = true;
    results.push_back(wsn::bench::measure("resilience_sweep/gilbert", [&] {
      (void)wsn::run_resilience_sweep(*topo, plan, bench_config);
    }));

    wsn::PlannerComparisonConfig cmp_config;
    cmp_config.loss_rates = {0.2};
    cmp_config.trials = 8;
    cmp_config.seed = 24083;
    cmp_config.workers = config.workers;
    results.push_back(wsn::bench::measure("planner_comparison/gilbert", [&] {
      (void)wsn::run_planner_comparison(*topo, plan, cmp_config);
    }));

    if (!wsn::bench::write_bench_json(json_path, "resilience_sweep",
                                      results)) {
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (cli.get_flag("profile")) {
    std::printf("\n%s", wsn::Profiler::instance().report_text().c_str());
  }
  return 0;
}
