// Regenerates paper Figure 7: one-to-all broadcast on a 2D mesh with 8
// neighbors, source (5,9) on a 14×14 grid (196 nodes).  The paper
// highlights that only 3 of 196 nodes retransmit; we print the full
// resolved plan so the near-source feeder retransmitters and any repairs
// are visible.

#include <cstdio>

#include "analysis/ascii_viz.h"
#include "protocol/mesh2d8_broadcast.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/mesh2d8.h"

int main() {
  const wsn::Mesh2D8 topo(14, 14);
  const wsn::Grid2D& grid = topo.grid();
  const wsn::Vec2 src{5, 9};

  const wsn::Mesh2d8Broadcast protocol;
  const wsn::RelayPlan base = protocol.plan(topo, grid.to_id(src));
  wsn::ResolveReport report;
  const wsn::RelayPlan plan =
      wsn::paper_plan(topo, grid.to_id(src), {}, &report);
  const wsn::BroadcastOutcome out = wsn::simulate_broadcast(topo, plan);

  std::printf("Figure 7: one-to-all broadcast, 2D-8 mesh 14x14, source %s\n",
              wsn::to_string(src).c_str());
  std::printf("  %s  (resolver repairs: %zu)\n\n",
              out.stats.summary().c_str(), report.repairs);
  std::printf(
      "relay roles (S source, # relay, R rule retransmitter, r/+ resolver "
      "additions):\n%s\n",
      wsn::render_roles(grid, plan, &out, &base).c_str());
  std::printf("transmission sequence numbers:\n%s\n",
              wsn::render_slots(grid, out).c_str());

  std::printf("multi-transmission nodes (paper: 3 among 196, incl. (6,8)):");
  for (wsn::NodeId v : plan.retransmitters()) {
    std::printf(" %s", wsn::to_string(grid.to_coord(v)).c_str());
  }
  std::printf("\nreachability: %.1f%% (paper: 100%%)\n",
              100.0 * out.stats.reachability());
  return 0;
}
