// Ablation of §3.1's design decision: handle the predictable junction
// collisions by RETRANSMITTING (the paper's choice) versus by DELAYING the
// vertical sweeps to avoid them (the alternative the paper rejects, arguing
// it costs extra delay and duplicate receptions).
//
// Both 2D-4 variants sweep all 512 sources; the resolver tops up whatever
// either policy leaves stranded, so both rows reflect 100% reachability.

#include <cstdio>

#include "analysis/sweep.h"
#include "common/string_util.h"
#include "common/table.h"
#include "protocol/mesh2d4_broadcast.h"
#include "protocol/resolver.h"
#include "topology/mesh2d4.h"

namespace {

struct Row {
  double mean_tx = 0.0;
  double mean_dup = 0.0;
  double mean_power = 0.0;
  double mean_delay = 0.0;
  wsn::Slot max_delay = 0;
  bool all_reached = true;
};

Row evaluate(const wsn::Mesh2D4& topo,
             wsn::Mesh2d4Broadcast::CollisionPolicy policy) {
  const wsn::Mesh2d4Broadcast protocol(policy);
  const wsn::SweepResult sweep = wsn::sweep_all_sources_with(
      topo, [&](const wsn::Topology& t, wsn::NodeId src) {
        return wsn::resolve_full_reachability(t, protocol.plan(t, src));
      });
  Row row;
  for (const wsn::SourceResult& r : sweep.per_source) {
    row.mean_tx += static_cast<double>(r.stats.tx);
    row.mean_dup += static_cast<double>(r.stats.duplicates);
    row.mean_power += r.stats.total_energy();
    row.mean_delay += static_cast<double>(r.stats.delay);
    row.all_reached = row.all_reached && r.stats.fully_reached();
  }
  const auto n = static_cast<double>(sweep.per_source.size());
  row.mean_tx /= n;
  row.mean_dup /= n;
  row.mean_power /= n;
  row.mean_delay /= n;
  row.max_delay = sweep.max_delay();
  return row;
}

}  // namespace

int main() {
  const wsn::Mesh2D4 topo(32, 16);

  wsn::AsciiTable table({"policy", "reach", "mean Tx", "mean dup",
                         "mean P(J)", "mean delay", "max delay"});
  table.set_title(
      "Ablation: 2D-4 collision handling, retransmit (paper) vs delay-"
      "avoidance (rejected), all 512 sources");

  const auto add = [&](const char* name, const Row& row) {
    table.add_row({name, row.all_reached ? "100%" : "<100%",
                   wsn::fixed(row.mean_tx, 1), wsn::fixed(row.mean_dup, 1),
                   wsn::sci(row.mean_power), wsn::fixed(row.mean_delay, 1),
                   std::to_string(row.max_delay)});
  };
  add("retransmit",
      evaluate(topo, wsn::Mesh2d4Broadcast::CollisionPolicy::kRetransmit));
  add("delay-avoidance",
      evaluate(topo,
               wsn::Mesh2d4Broadcast::CollisionPolicy::kDelayAvoidance));

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nThe paper's §3.1 argument: avoiding the collisions delays the "
      "vertical sweeps and\nmakes more nodes receive duplicated messages; "
      "letting the junction nodes retransmit\nis cheaper.  Compare the "
      "duplicate and delay columns.\n");
  return 0;
}
