// The comparison the paper motivates but does not tabulate: its topology-
// aware protocols against the "traditional broadcasting protocols" (§3 ¶1)
// -- blind flooding and probabilistic gossip -- on the same 512-node
// meshes, plus flooding on a random unit-disk topology (the deployment the
// introduction argues against).
//
// Metrics per protocol: reachability, transmissions, power, delay, all
// averaged over 64 evenly spaced source positions.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/table.h"
#include "protocol/flooding.h"
#include "protocol/cds_broadcast.h"
#include "protocol/gossip.h"
#include "protocol/registry.h"
#include "protocol/resolver.h"
#include "sim/simulator.h"
#include "topology/factory.h"
#include "topology/random_geometric.h"

namespace {

struct Averages {
  double reach = 0.0;
  double tx = 0.0;
  double power = 0.0;
  double delay = 0.0;
};

template <typename PlanFn>
Averages average_over_sources(const wsn::Topology& topo, PlanFn&& make_plan) {
  Averages avg;
  const std::size_t step = std::max<std::size_t>(1, topo.num_nodes() / 64);
  std::size_t samples = 0;
  for (wsn::NodeId src = 0; src < topo.num_nodes();
       src = static_cast<wsn::NodeId>(src + step)) {
    const auto out = wsn::simulate_broadcast(topo, make_plan(topo, src));
    avg.reach += out.stats.reachability();
    avg.tx += static_cast<double>(out.stats.tx);
    avg.power += out.stats.total_energy();
    avg.delay += static_cast<double>(out.stats.delay);
    ++samples;
  }
  const auto count = static_cast<double>(samples);
  return {avg.reach / count, avg.tx / count, avg.power / count,
          avg.delay / count};
}

}  // namespace

int main() {
  wsn::AsciiTable table({"Topology", "protocol", "reach", "avg Tx",
                         "avg P(J)", "avg delay"});
  table.set_title(
      "Baselines vs the paper's protocols (64-source averages)");

  const wsn::Flooding flood_sync(0);
  const wsn::Flooding flood_jitter(7);
  const wsn::Gossip gossip(0.65, 7);
  const wsn::CdsBroadcast cds;
  const auto cds_resolved = [&cds](const wsn::Topology& t, wsn::NodeId src) {
    return wsn::resolve_full_reachability(t, cds.plan(t, src));
  };

  for (const std::string& family : wsn::regular_families()) {
    const auto topo = wsn::make_paper_topology(family);
    const auto add = [&](const std::string& name, const Averages& avg) {
      table.add_row({family, name, wsn::fixed(100.0 * avg.reach, 1) + "%",
                     wsn::fixed(avg.tx, 0), wsn::sci(avg.power),
                     wsn::fixed(avg.delay, 1)});
    };
    add("paper protocol",
        average_over_sources(*topo, [](const wsn::Topology& t,
                                       wsn::NodeId src) {
          return wsn::paper_plan(t, src);
        }));
    add(flood_sync.name(),
        average_over_sources(*topo, [&](const wsn::Topology& t,
                                        wsn::NodeId src) {
          return flood_sync.plan(t, src);
        }));
    add(flood_jitter.name(),
        average_over_sources(*topo, [&](const wsn::Topology& t,
                                        wsn::NodeId src) {
          return flood_jitter.plan(t, src);
        }));
    add(gossip.name(),
        average_over_sources(*topo, [&](const wsn::Topology& t,
                                        wsn::NodeId src) {
          return gossip.plan(t, src);
        }));
    add(cds.name() + "+resolver", average_over_sources(*topo, cds_resolved));
    table.add_rule();
  }

  // Random deployment: the paper's protocols need grid ids, so only the
  // baselines run here -- the gap versus the regular rows above is the
  // introduction's "regular topologies communicate more efficiently".
  const wsn::RandomGeometric random_topo(512, 11.0, 0.9, 20030407);
  const auto add_random = [&](const std::string& name, const Averages& avg) {
    table.add_row({"random", name, wsn::fixed(100.0 * avg.reach, 1) + "%",
                   wsn::fixed(avg.tx, 0), wsn::sci(avg.power),
                   wsn::fixed(avg.delay, 1)});
  };
  add_random(flood_jitter.name(), average_over_sources(
                                      random_topo,
                                      [&](const wsn::Topology& t,
                                          wsn::NodeId src) {
                                        return flood_jitter.plan(t, src);
                                      }));
  add_random(gossip.name(), average_over_sources(
                                random_topo,
                                [&](const wsn::Topology& t, wsn::NodeId src) {
                                  return gossip.plan(t, src);
                                }));
  add_random(cds.name() + "+resolver",
             average_over_sources(random_topo, cds_resolved));

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nNotes: synchronous flooding strands whole regions behind "
      "collisions; jittered flooding\nrecovers reachability at ~2x the "
      "transmissions and energy of the paper's protocols;\ngossip trades "
      "reachability for transmissions.  Only the topology-aware protocols\n"
      "deliver 100%% with relay counts near the ideal case.\n");
  return 0;
}
