// Regenerates paper Table 4: the worst case of the broadcasting protocols
// over all 512 source positions (corner-ish sources; includes every
// resolver repair in the counts).

#include <cstdio>

#include "analysis/report.h"

int main() {
  std::fputs(wsn::build_table4().render().c_str(), stdout);
  return 0;
}
