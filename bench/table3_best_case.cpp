// Regenerates paper Table 3: the best case of the broadcasting protocols --
// the source position minimizing total power -- found by sweeping all 512
// source positions per topology under the full collision-accurate
// simulation.

#include <cstdio>

#include "analysis/report.h"

int main() {
  std::fputs(wsn::build_table3().render().c_str(), stdout);
  return 0;
}
