// google-benchmark microbenchmarks of the simulation engine itself:
// per-broadcast latency across network sizes, plan construction cost, the
// resolver's overhead, and the parallel full-sweep throughput that powers
// Tables 3-5.
//
// Besides the interactive google-benchmark output, the binary self-times
// one broadcast per paper topology and writes BENCH_perf.json
// (meshbcast.bench schema, see EXPERIMENTS.md) so CI can archive the perf
// trajectory:
//
//   $ perf_simulator [--json-out BENCH_perf.json] [--no-gbench] [gbench args]

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/sweep.h"
#include "bench_json.h"
#include "protocol/mesh2d4_broadcast.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/factory.h"
#include "topology/graph_algos.h"
#include "topology/mesh2d4.h"
#include "topology/mesh3d6.h"

namespace {

void BM_Simulate2D4(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const wsn::Mesh2D4 topo(2 * side, side);
  const wsn::Mesh2d4Broadcast protocol;
  const wsn::NodeId src = topo.grid().to_id({side, side / 2 + 1});
  const wsn::RelayPlan plan = protocol.plan(topo, src);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wsn::simulate_broadcast(topo, plan));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(topo.num_nodes()));
}
BENCHMARK(BM_Simulate2D4)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_PlanConstruction2D4(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const wsn::Mesh2D4 topo(2 * side, side);
  const wsn::Mesh2d4Broadcast protocol;
  const wsn::NodeId src = topo.grid().to_id({side, side / 2 + 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.plan(topo, src));
  }
}
BENCHMARK(BM_PlanConstruction2D4)->Arg(16)->Arg(64);

void BM_ResolvedPlan3D6(benchmark::State& state) {
  const wsn::Mesh3D6 topo(8, 8, 8);
  const wsn::NodeId src = topo.grid().to_id({6, 8, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(wsn::paper_plan(topo, src));
  }
}
BENCHMARK(BM_ResolvedPlan3D6);

void BM_TopologyConstruction(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const wsn::Mesh2D4 topo(2 * side, side);
    benchmark::DoNotOptimize(topo.num_nodes());
  }
}
BENCHMARK(BM_TopologyConstruction)->Arg(16)->Arg(64);

void BM_FullSweep2D4(benchmark::State& state) {
  const wsn::Mesh2D4 topo(32, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wsn::sweep_all_sources(topo));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(topo.num_nodes()));
}
BENCHMARK(BM_FullSweep2D4)->Unit(benchmark::kMillisecond);

// One self-timed broadcast per paper topology (center source) plus the
// parallel full sweep -- the numbers the BENCH_perf.json trajectory tracks.
std::vector<wsn::bench::BenchResult> run_json_benches() {
  std::vector<wsn::bench::BenchResult> results;
  for (const std::string& family : wsn::regular_families()) {
    const auto topo = wsn::make_paper_topology(family);
    const wsn::NodeId src = wsn::graph_center(*topo);
    const wsn::RelayPlan plan = wsn::paper_plan(*topo, src);
    results.push_back(wsn::bench::measure("simulate/" + family, [&] {
      benchmark::DoNotOptimize(wsn::simulate_broadcast(*topo, plan));
    }));
  }
  {
    const wsn::Mesh2D4 topo(32, 16);
    results.push_back(wsn::bench::measure(
        "sweep_all_sources/2D-4",
        [&] { benchmark::DoNotOptimize(wsn::sweep_all_sources(topo)); },
        /*min_iterations=*/4, /*min_seconds=*/0.5));
  }
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the json-emission flags before handing the rest to
  // google-benchmark (it rejects unknown arguments).
  std::string json_path = "BENCH_perf.json";
  bool run_gbench = true;
  std::vector<char*> kept;
  kept.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-gbench") {
      run_gbench = false;
    } else if (arg == "--json-out" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_path = arg.substr(std::strlen("--json-out="));
    } else {
      kept.push_back(argv[i]);
    }
  }

  const std::vector<wsn::bench::BenchResult> results = run_json_benches();
  if (!json_path.empty()) {
    if (!wsn::bench::write_bench_json(json_path, "perf_simulator", results)) {
      return 1;
    }
    std::printf("wrote %s (%zu results)\n\n", json_path.c_str(),
                results.size());
  }

  if (run_gbench) {
    int kept_argc = static_cast<int>(kept.size());
    benchmark::Initialize(&kept_argc, kept.data());
    if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
