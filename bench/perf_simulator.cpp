// google-benchmark microbenchmarks of the simulation engine itself:
// per-broadcast latency across network sizes, plan construction cost, the
// resolver's overhead, and the parallel full-sweep throughput that powers
// Tables 3-5.

#include <benchmark/benchmark.h>

#include "analysis/sweep.h"
#include "protocol/mesh2d4_broadcast.h"
#include "protocol/registry.h"
#include "sim/simulator.h"
#include "topology/mesh2d4.h"
#include "topology/mesh3d6.h"

namespace {

void BM_Simulate2D4(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const wsn::Mesh2D4 topo(2 * side, side);
  const wsn::Mesh2d4Broadcast protocol;
  const wsn::NodeId src = topo.grid().to_id({side, side / 2 + 1});
  const wsn::RelayPlan plan = protocol.plan(topo, src);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wsn::simulate_broadcast(topo, plan));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(topo.num_nodes()));
}
BENCHMARK(BM_Simulate2D4)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_PlanConstruction2D4(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const wsn::Mesh2D4 topo(2 * side, side);
  const wsn::Mesh2d4Broadcast protocol;
  const wsn::NodeId src = topo.grid().to_id({side, side / 2 + 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.plan(topo, src));
  }
}
BENCHMARK(BM_PlanConstruction2D4)->Arg(16)->Arg(64);

void BM_ResolvedPlan3D6(benchmark::State& state) {
  const wsn::Mesh3D6 topo(8, 8, 8);
  const wsn::NodeId src = topo.grid().to_id({6, 8, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(wsn::paper_plan(topo, src));
  }
}
BENCHMARK(BM_ResolvedPlan3D6);

void BM_TopologyConstruction(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const wsn::Mesh2D4 topo(2 * side, side);
    benchmark::DoNotOptimize(topo.num_nodes());
  }
}
BENCHMARK(BM_TopologyConstruction)->Arg(16)->Arg(64);

void BM_FullSweep2D4(benchmark::State& state) {
  const wsn::Mesh2D4 topo(32, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wsn::sweep_all_sources(topo));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(topo.num_nodes()));
}
BENCHMARK(BM_FullSweep2D4)->Unit(benchmark::kMillisecond);

}  // namespace
