// Regenerates paper Figure 6's argument: in the 2D-8 mesh, forwarding
// along a diagonal beats forwarding along an axis -- fewer hops corner to
// corner (3 vs 6) and a higher ETR at the relay (5/8 vs 3/8).
//
// We measure both claims on the 4×4 grid of the figure by simulating the
// two single-relay hand-offs it describes.

#include <cstdio>

#include "sim/simulator.h"
#include "topology/graph_algos.h"
#include "topology/mesh2d8.h"

namespace {

/// ETR of node `relay` when it forwards a message first transmitted by
/// `from` (everything else passive).
double handoff_etr(const wsn::Mesh2D8& topo, wsn::Vec2 from,
                   wsn::Vec2 relay) {
  const wsn::Grid2D& g = topo.grid();
  wsn::RelayPlan plan = wsn::RelayPlan::empty(topo.num_nodes(),
                                              g.to_id(from));
  plan.tx_offsets[g.to_id(relay)] = {1};
  const auto out = wsn::simulate_broadcast(topo, plan);
  for (const wsn::TxRecord& rec : out.transmissions) {
    if (rec.node == g.to_id(relay)) {
      return static_cast<double>(rec.fresh) /
             static_cast<double>(topo.degree(rec.node));
    }
  }
  return 0.0;
}

}  // namespace

int main() {
  const wsn::Mesh2D8 topo(4, 4);
  const wsn::Grid2D& g = topo.grid();

  std::printf("Figure 6: diagonal vs axis forwarding in the 2D-8 mesh\n\n");

  // Hop counts (1,4) -> (4,1): BFS distance is the Chebyshev metric.
  const auto dist = wsn::bfs_distances(topo, g.to_id({1, 4}));
  std::printf("hops (1,4) -> (4,1) along the mesh: %u (paper: 3 diagonal "
              "hops vs 6 axis hops)\n\n",
              dist[g.to_id({4, 1})]);

  // ETR of (3,2) receiving from (2,3) (diagonal) vs from (2,2) (axis).
  const double diagonal = handoff_etr(topo, {2, 3}, {3, 2});
  const double axis = handoff_etr(topo, {2, 2}, {3, 2});
  std::printf("ETR of relay (3,2) fed along the diagonal from (2,3): %.3f "
              "(paper: 5/8 = 0.625)\n",
              diagonal);
  std::printf("ETR of relay (3,2) fed along the X axis from (2,2):   %.3f "
              "(paper: 3/8 = 0.375)\n",
              axis);
  return 0;
}
