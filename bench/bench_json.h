#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

/// Machine-readable bench output: BENCH_perf.json.
///
/// Every perf bench emits one JSON document so the bench trajectory can be
/// tracked across commits (schema documented in EXPERIMENTS.md):
///
///   {
///     "schema": "meshbcast.bench", "version": 1, "bench": "<binary>",
///     "results": [
///       {"name": "simulate/2D-4", "iterations": 64,
///        "runs_per_sec": 10443.2, "mean_ms": 0.0957,
///        "p50_ms": 0.0951, "p95_ms": 0.0987}, ...
///     ]
///   }
///
/// `measure` times a callable with a fixed warmup, collects per-iteration
/// wall times and reports runs/sec plus p50/p95 -- enough to catch both
/// mean regressions and tail wobble.  Header-only and bench-local on
/// purpose: the library itself stays free of benchmarking concerns.
namespace wsn::bench {

struct BenchResult {
  std::string name;
  std::size_t iterations = 0;
  double runs_per_sec = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

/// `index` in [0, 1]; linear interpolation between order statistics.
inline double percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted_ms.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_ms[lo] + (sorted_ms[hi] - sorted_ms[lo]) * frac;
}

/// Runs `fn` until both `min_iterations` and `min_seconds` are met
/// (after one untimed warmup call) and folds the per-iteration wall
/// times into a BenchResult.
template <typename Fn>
BenchResult measure(std::string name, Fn&& fn,
                    std::size_t min_iterations = 16,
                    double min_seconds = 0.2,
                    std::size_t max_iterations = 4096) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup

  std::vector<double> times_ms;
  double total_s = 0.0;
  while ((times_ms.size() < min_iterations || total_s < min_seconds) &&
         times_ms.size() < max_iterations) {
    const auto start = clock::now();
    fn();
    const std::chrono::duration<double> elapsed = clock::now() - start;
    times_ms.push_back(elapsed.count() * 1e3);
    total_s += elapsed.count();
  }

  BenchResult result;
  result.name = std::move(name);
  result.iterations = times_ms.size();
  result.runs_per_sec =
      total_s > 0.0 ? static_cast<double>(times_ms.size()) / total_s : 0.0;
  double sum = 0.0;
  for (double t : times_ms) sum += t;
  result.mean_ms = sum / static_cast<double>(times_ms.size());
  std::sort(times_ms.begin(), times_ms.end());
  result.p50_ms = percentile(times_ms, 0.50);
  result.p95_ms = percentile(times_ms, 0.95);
  return result;
}

/// Writes the document; returns false (with a stderr note) on I/O error.
inline bool write_bench_json(const std::string& path,
                             const std::string& bench,
                             const std::vector<BenchResult>& results) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\"schema\":\"meshbcast.bench\",\"version\":1,\"bench\":\""
      << bench << "\",\n \"results\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    if (i != 0) out << ",";
    char line[256];
    std::snprintf(line, sizeof line,
                  "\n  {\"name\":\"%s\",\"iterations\":%zu,"
                  "\"runs_per_sec\":%.3f,\"mean_ms\":%.6f,"
                  "\"p50_ms\":%.6f,\"p95_ms\":%.6f}",
                  r.name.c_str(), r.iterations, r.runs_per_sec, r.mean_ms,
                  r.p50_ms, r.p95_ms);
    out << line;
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

}  // namespace wsn::bench
