# Empty dependencies file for torus_generalization.
# This may be replaced when dependencies are built.
