file(REMOVE_RECURSE
  "CMakeFiles/torus_generalization.dir/torus_generalization.cpp.o"
  "CMakeFiles/torus_generalization.dir/torus_generalization.cpp.o.d"
  "torus_generalization"
  "torus_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torus_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
