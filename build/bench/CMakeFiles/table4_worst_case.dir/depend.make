# Empty dependencies file for table4_worst_case.
# This may be replaced when dependencies are built.
