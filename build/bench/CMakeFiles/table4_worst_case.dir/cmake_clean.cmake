file(REMOVE_RECURSE
  "CMakeFiles/table4_worst_case.dir/table4_worst_case.cpp.o"
  "CMakeFiles/table4_worst_case.dir/table4_worst_case.cpp.o.d"
  "table4_worst_case"
  "table4_worst_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_worst_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
