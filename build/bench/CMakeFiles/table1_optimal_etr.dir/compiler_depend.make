# Empty compiler generated dependencies file for table1_optimal_etr.
# This may be replaced when dependencies are built.
