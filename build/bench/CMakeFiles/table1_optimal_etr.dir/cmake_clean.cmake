file(REMOVE_RECURSE
  "CMakeFiles/table1_optimal_etr.dir/table1_optimal_etr.cpp.o"
  "CMakeFiles/table1_optimal_etr.dir/table1_optimal_etr.cpp.o.d"
  "table1_optimal_etr"
  "table1_optimal_etr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_optimal_etr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
