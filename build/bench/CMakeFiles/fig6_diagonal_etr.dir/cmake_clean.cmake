file(REMOVE_RECURSE
  "CMakeFiles/fig6_diagonal_etr.dir/fig6_diagonal_etr.cpp.o"
  "CMakeFiles/fig6_diagonal_etr.dir/fig6_diagonal_etr.cpp.o.d"
  "fig6_diagonal_etr"
  "fig6_diagonal_etr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_diagonal_etr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
