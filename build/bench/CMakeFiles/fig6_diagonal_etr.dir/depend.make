# Empty dependencies file for fig6_diagonal_etr.
# This may be replaced when dependencies are built.
