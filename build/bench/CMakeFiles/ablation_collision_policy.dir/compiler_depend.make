# Empty compiler generated dependencies file for ablation_collision_policy.
# This may be replaced when dependencies are built.
