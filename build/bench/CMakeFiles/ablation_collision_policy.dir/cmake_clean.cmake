file(REMOVE_RECURSE
  "CMakeFiles/ablation_collision_policy.dir/ablation_collision_policy.cpp.o"
  "CMakeFiles/ablation_collision_policy.dir/ablation_collision_policy.cpp.o.d"
  "ablation_collision_policy"
  "ablation_collision_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collision_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
