# Empty compiler generated dependencies file for energy_balance.
# This may be replaced when dependencies are built.
