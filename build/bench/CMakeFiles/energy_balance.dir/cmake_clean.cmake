file(REMOVE_RECURSE
  "CMakeFiles/energy_balance.dir/energy_balance.cpp.o"
  "CMakeFiles/energy_balance.dir/energy_balance.cpp.o.d"
  "energy_balance"
  "energy_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
