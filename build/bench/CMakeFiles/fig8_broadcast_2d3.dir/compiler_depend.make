# Empty compiler generated dependencies file for fig8_broadcast_2d3.
# This may be replaced when dependencies are built.
