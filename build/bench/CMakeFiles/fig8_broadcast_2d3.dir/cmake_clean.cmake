file(REMOVE_RECURSE
  "CMakeFiles/fig8_broadcast_2d3.dir/fig8_broadcast_2d3.cpp.o"
  "CMakeFiles/fig8_broadcast_2d3.dir/fig8_broadcast_2d3.cpp.o.d"
  "fig8_broadcast_2d3"
  "fig8_broadcast_2d3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_broadcast_2d3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
