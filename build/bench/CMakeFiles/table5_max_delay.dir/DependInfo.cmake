
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table5_max_delay.cpp" "bench/CMakeFiles/table5_max_delay.dir/table5_max_delay.cpp.o" "gcc" "bench/CMakeFiles/table5_max_delay.dir/table5_max_delay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/wsn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/wsn_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/wsn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/wsn_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/wsn_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wsn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
