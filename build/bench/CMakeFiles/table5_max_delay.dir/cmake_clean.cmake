file(REMOVE_RECURSE
  "CMakeFiles/table5_max_delay.dir/table5_max_delay.cpp.o"
  "CMakeFiles/table5_max_delay.dir/table5_max_delay.cpp.o.d"
  "table5_max_delay"
  "table5_max_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_max_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
