# Empty dependencies file for table5_max_delay.
# This may be replaced when dependencies are built.
