file(REMOVE_RECURSE
  "CMakeFiles/fig7_broadcast_2d8.dir/fig7_broadcast_2d8.cpp.o"
  "CMakeFiles/fig7_broadcast_2d8.dir/fig7_broadcast_2d8.cpp.o.d"
  "fig7_broadcast_2d8"
  "fig7_broadcast_2d8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_broadcast_2d8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
