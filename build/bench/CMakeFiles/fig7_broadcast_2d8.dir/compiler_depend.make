# Empty compiler generated dependencies file for fig7_broadcast_2d8.
# This may be replaced when dependencies are built.
