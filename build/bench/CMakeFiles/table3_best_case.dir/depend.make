# Empty dependencies file for table3_best_case.
# This may be replaced when dependencies are built.
