file(REMOVE_RECURSE
  "CMakeFiles/table3_best_case.dir/table3_best_case.cpp.o"
  "CMakeFiles/table3_best_case.dir/table3_best_case.cpp.o.d"
  "table3_best_case"
  "table3_best_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_best_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
