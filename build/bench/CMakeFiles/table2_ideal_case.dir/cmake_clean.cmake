file(REMOVE_RECURSE
  "CMakeFiles/table2_ideal_case.dir/table2_ideal_case.cpp.o"
  "CMakeFiles/table2_ideal_case.dir/table2_ideal_case.cpp.o.d"
  "table2_ideal_case"
  "table2_ideal_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_ideal_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
