# Empty dependencies file for table2_ideal_case.
# This may be replaced when dependencies are built.
