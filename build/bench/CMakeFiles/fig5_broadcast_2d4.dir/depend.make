# Empty dependencies file for fig5_broadcast_2d4.
# This may be replaced when dependencies are built.
