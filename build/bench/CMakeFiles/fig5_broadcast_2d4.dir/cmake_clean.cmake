file(REMOVE_RECURSE
  "CMakeFiles/fig5_broadcast_2d4.dir/fig5_broadcast_2d4.cpp.o"
  "CMakeFiles/fig5_broadcast_2d4.dir/fig5_broadcast_2d4.cpp.o.d"
  "fig5_broadcast_2d4"
  "fig5_broadcast_2d4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_broadcast_2d4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
