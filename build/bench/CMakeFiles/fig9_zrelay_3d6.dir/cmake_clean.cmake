file(REMOVE_RECURSE
  "CMakeFiles/fig9_zrelay_3d6.dir/fig9_zrelay_3d6.cpp.o"
  "CMakeFiles/fig9_zrelay_3d6.dir/fig9_zrelay_3d6.cpp.o.d"
  "fig9_zrelay_3d6"
  "fig9_zrelay_3d6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_zrelay_3d6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
