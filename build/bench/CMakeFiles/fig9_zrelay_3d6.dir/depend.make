# Empty dependencies file for fig9_zrelay_3d6.
# This may be replaced when dependencies are built.
