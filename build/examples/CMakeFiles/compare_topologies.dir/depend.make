# Empty dependencies file for compare_topologies.
# This may be replaced when dependencies are built.
