file(REMOVE_RECURSE
  "CMakeFiles/compare_topologies.dir/compare_topologies.cpp.o"
  "CMakeFiles/compare_topologies.dir/compare_topologies.cpp.o.d"
  "compare_topologies"
  "compare_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
