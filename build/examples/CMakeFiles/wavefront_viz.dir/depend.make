# Empty dependencies file for wavefront_viz.
# This may be replaced when dependencies are built.
