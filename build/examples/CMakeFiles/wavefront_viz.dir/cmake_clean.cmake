file(REMOVE_RECURSE
  "CMakeFiles/wavefront_viz.dir/wavefront_viz.cpp.o"
  "CMakeFiles/wavefront_viz.dir/wavefront_viz.cpp.o.d"
  "wavefront_viz"
  "wavefront_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavefront_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
