# Empty compiler generated dependencies file for meshbcast_cli.
# This may be replaced when dependencies are built.
