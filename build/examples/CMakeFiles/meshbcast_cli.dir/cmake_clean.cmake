file(REMOVE_RECURSE
  "CMakeFiles/meshbcast_cli.dir/meshbcast_cli.cpp.o"
  "CMakeFiles/meshbcast_cli.dir/meshbcast_cli.cpp.o.d"
  "meshbcast_cli"
  "meshbcast_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meshbcast_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
