# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--width" "8" "--height" "8" "--src-x" "2" "--src-y" "3")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_topologies "/root/repo/build/examples/compare_topologies" "--nodes" "128")
set_tests_properties(example_compare_topologies PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_lifetime "/root/repo/build/examples/network_lifetime" "--budget-uj" "500" "--max-rounds" "50")
set_tests_properties(example_network_lifetime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wavefront_viz "/root/repo/build/examples/wavefront_viz" "--family" "2D-4" "--width" "8" "--height" "8" "--src-x" "4" "--src-y" "4" "--max-frames" "3")
set_tests_properties(example_wavefront_viz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_export_trace "/root/repo/build/examples/export_trace" "--width" "8" "--height" "8" "--src" "20" "--plan-out" "/root/repo/build/smoke_plan.csv" "--trace-out" "/root/repo/build/smoke_trace.csv")
set_tests_properties(example_export_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_run "/root/repo/build/examples/meshbcast_cli" "run" "--family" "2D-8" "--width" "10" "--height" "10")
set_tests_properties(example_cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_pipeline "/root/repo/build/examples/meshbcast_cli" "pipeline" "--family" "2D-4" "--width" "12" "--height" "8" "--packets" "2")
set_tests_properties(example_cli_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
