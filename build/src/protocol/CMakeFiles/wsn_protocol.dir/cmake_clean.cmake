file(REMOVE_RECURSE
  "CMakeFiles/wsn_protocol.dir/cds_broadcast.cpp.o"
  "CMakeFiles/wsn_protocol.dir/cds_broadcast.cpp.o.d"
  "CMakeFiles/wsn_protocol.dir/etr.cpp.o"
  "CMakeFiles/wsn_protocol.dir/etr.cpp.o.d"
  "CMakeFiles/wsn_protocol.dir/flooding.cpp.o"
  "CMakeFiles/wsn_protocol.dir/flooding.cpp.o.d"
  "CMakeFiles/wsn_protocol.dir/gossip.cpp.o"
  "CMakeFiles/wsn_protocol.dir/gossip.cpp.o.d"
  "CMakeFiles/wsn_protocol.dir/ideal_model.cpp.o"
  "CMakeFiles/wsn_protocol.dir/ideal_model.cpp.o.d"
  "CMakeFiles/wsn_protocol.dir/mesh2d3_broadcast.cpp.o"
  "CMakeFiles/wsn_protocol.dir/mesh2d3_broadcast.cpp.o.d"
  "CMakeFiles/wsn_protocol.dir/mesh2d4_broadcast.cpp.o"
  "CMakeFiles/wsn_protocol.dir/mesh2d4_broadcast.cpp.o.d"
  "CMakeFiles/wsn_protocol.dir/mesh2d8_broadcast.cpp.o"
  "CMakeFiles/wsn_protocol.dir/mesh2d8_broadcast.cpp.o.d"
  "CMakeFiles/wsn_protocol.dir/mesh3d6_broadcast.cpp.o"
  "CMakeFiles/wsn_protocol.dir/mesh3d6_broadcast.cpp.o.d"
  "CMakeFiles/wsn_protocol.dir/registry.cpp.o"
  "CMakeFiles/wsn_protocol.dir/registry.cpp.o.d"
  "CMakeFiles/wsn_protocol.dir/resolver.cpp.o"
  "CMakeFiles/wsn_protocol.dir/resolver.cpp.o.d"
  "libwsn_protocol.a"
  "libwsn_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
