file(REMOVE_RECURSE
  "libwsn_protocol.a"
)
