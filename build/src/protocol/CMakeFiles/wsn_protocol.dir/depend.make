# Empty dependencies file for wsn_protocol.
# This may be replaced when dependencies are built.
