
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/cds_broadcast.cpp" "src/protocol/CMakeFiles/wsn_protocol.dir/cds_broadcast.cpp.o" "gcc" "src/protocol/CMakeFiles/wsn_protocol.dir/cds_broadcast.cpp.o.d"
  "/root/repo/src/protocol/etr.cpp" "src/protocol/CMakeFiles/wsn_protocol.dir/etr.cpp.o" "gcc" "src/protocol/CMakeFiles/wsn_protocol.dir/etr.cpp.o.d"
  "/root/repo/src/protocol/flooding.cpp" "src/protocol/CMakeFiles/wsn_protocol.dir/flooding.cpp.o" "gcc" "src/protocol/CMakeFiles/wsn_protocol.dir/flooding.cpp.o.d"
  "/root/repo/src/protocol/gossip.cpp" "src/protocol/CMakeFiles/wsn_protocol.dir/gossip.cpp.o" "gcc" "src/protocol/CMakeFiles/wsn_protocol.dir/gossip.cpp.o.d"
  "/root/repo/src/protocol/ideal_model.cpp" "src/protocol/CMakeFiles/wsn_protocol.dir/ideal_model.cpp.o" "gcc" "src/protocol/CMakeFiles/wsn_protocol.dir/ideal_model.cpp.o.d"
  "/root/repo/src/protocol/mesh2d3_broadcast.cpp" "src/protocol/CMakeFiles/wsn_protocol.dir/mesh2d3_broadcast.cpp.o" "gcc" "src/protocol/CMakeFiles/wsn_protocol.dir/mesh2d3_broadcast.cpp.o.d"
  "/root/repo/src/protocol/mesh2d4_broadcast.cpp" "src/protocol/CMakeFiles/wsn_protocol.dir/mesh2d4_broadcast.cpp.o" "gcc" "src/protocol/CMakeFiles/wsn_protocol.dir/mesh2d4_broadcast.cpp.o.d"
  "/root/repo/src/protocol/mesh2d8_broadcast.cpp" "src/protocol/CMakeFiles/wsn_protocol.dir/mesh2d8_broadcast.cpp.o" "gcc" "src/protocol/CMakeFiles/wsn_protocol.dir/mesh2d8_broadcast.cpp.o.d"
  "/root/repo/src/protocol/mesh3d6_broadcast.cpp" "src/protocol/CMakeFiles/wsn_protocol.dir/mesh3d6_broadcast.cpp.o" "gcc" "src/protocol/CMakeFiles/wsn_protocol.dir/mesh3d6_broadcast.cpp.o.d"
  "/root/repo/src/protocol/registry.cpp" "src/protocol/CMakeFiles/wsn_protocol.dir/registry.cpp.o" "gcc" "src/protocol/CMakeFiles/wsn_protocol.dir/registry.cpp.o.d"
  "/root/repo/src/protocol/resolver.cpp" "src/protocol/CMakeFiles/wsn_protocol.dir/resolver.cpp.o" "gcc" "src/protocol/CMakeFiles/wsn_protocol.dir/resolver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/wsn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/wsn_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wsn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/wsn_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
