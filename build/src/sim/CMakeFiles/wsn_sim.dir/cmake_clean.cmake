file(REMOVE_RECURSE
  "CMakeFiles/wsn_sim.dir/pipeline.cpp.o"
  "CMakeFiles/wsn_sim.dir/pipeline.cpp.o.d"
  "CMakeFiles/wsn_sim.dir/simulator.cpp.o"
  "CMakeFiles/wsn_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/wsn_sim.dir/stats.cpp.o"
  "CMakeFiles/wsn_sim.dir/stats.cpp.o.d"
  "CMakeFiles/wsn_sim.dir/trace_io.cpp.o"
  "CMakeFiles/wsn_sim.dir/trace_io.cpp.o.d"
  "libwsn_sim.a"
  "libwsn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
