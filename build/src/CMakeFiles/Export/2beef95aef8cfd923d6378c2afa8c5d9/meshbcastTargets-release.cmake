#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "meshbcast::wsn_common" for configuration "Release"
set_property(TARGET meshbcast::wsn_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(meshbcast::wsn_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libwsn_common.a"
  )

list(APPEND _cmake_import_check_targets meshbcast::wsn_common )
list(APPEND _cmake_import_check_files_for_meshbcast::wsn_common "${_IMPORT_PREFIX}/lib/libwsn_common.a" )

# Import target "meshbcast::wsn_geometry" for configuration "Release"
set_property(TARGET meshbcast::wsn_geometry APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(meshbcast::wsn_geometry PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libwsn_geometry.a"
  )

list(APPEND _cmake_import_check_targets meshbcast::wsn_geometry )
list(APPEND _cmake_import_check_files_for_meshbcast::wsn_geometry "${_IMPORT_PREFIX}/lib/libwsn_geometry.a" )

# Import target "meshbcast::wsn_topology" for configuration "Release"
set_property(TARGET meshbcast::wsn_topology APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(meshbcast::wsn_topology PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libwsn_topology.a"
  )

list(APPEND _cmake_import_check_targets meshbcast::wsn_topology )
list(APPEND _cmake_import_check_files_for_meshbcast::wsn_topology "${_IMPORT_PREFIX}/lib/libwsn_topology.a" )

# Import target "meshbcast::wsn_radio" for configuration "Release"
set_property(TARGET meshbcast::wsn_radio APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(meshbcast::wsn_radio PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libwsn_radio.a"
  )

list(APPEND _cmake_import_check_targets meshbcast::wsn_radio )
list(APPEND _cmake_import_check_files_for_meshbcast::wsn_radio "${_IMPORT_PREFIX}/lib/libwsn_radio.a" )

# Import target "meshbcast::wsn_sim" for configuration "Release"
set_property(TARGET meshbcast::wsn_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(meshbcast::wsn_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libwsn_sim.a"
  )

list(APPEND _cmake_import_check_targets meshbcast::wsn_sim )
list(APPEND _cmake_import_check_files_for_meshbcast::wsn_sim "${_IMPORT_PREFIX}/lib/libwsn_sim.a" )

# Import target "meshbcast::wsn_protocol" for configuration "Release"
set_property(TARGET meshbcast::wsn_protocol APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(meshbcast::wsn_protocol PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libwsn_protocol.a"
  )

list(APPEND _cmake_import_check_targets meshbcast::wsn_protocol )
list(APPEND _cmake_import_check_files_for_meshbcast::wsn_protocol "${_IMPORT_PREFIX}/lib/libwsn_protocol.a" )

# Import target "meshbcast::wsn_analysis" for configuration "Release"
set_property(TARGET meshbcast::wsn_analysis APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(meshbcast::wsn_analysis PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libwsn_analysis.a"
  )

list(APPEND _cmake_import_check_targets meshbcast::wsn_analysis )
list(APPEND _cmake_import_check_files_for_meshbcast::wsn_analysis "${_IMPORT_PREFIX}/lib/libwsn_analysis.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
