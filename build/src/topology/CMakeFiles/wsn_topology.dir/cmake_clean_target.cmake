file(REMOVE_RECURSE
  "libwsn_topology.a"
)
