file(REMOVE_RECURSE
  "CMakeFiles/wsn_topology.dir/factory.cpp.o"
  "CMakeFiles/wsn_topology.dir/factory.cpp.o.d"
  "CMakeFiles/wsn_topology.dir/graph_algos.cpp.o"
  "CMakeFiles/wsn_topology.dir/graph_algos.cpp.o.d"
  "CMakeFiles/wsn_topology.dir/mesh2d3.cpp.o"
  "CMakeFiles/wsn_topology.dir/mesh2d3.cpp.o.d"
  "CMakeFiles/wsn_topology.dir/mesh2d4.cpp.o"
  "CMakeFiles/wsn_topology.dir/mesh2d4.cpp.o.d"
  "CMakeFiles/wsn_topology.dir/mesh2d8.cpp.o"
  "CMakeFiles/wsn_topology.dir/mesh2d8.cpp.o.d"
  "CMakeFiles/wsn_topology.dir/mesh3d6.cpp.o"
  "CMakeFiles/wsn_topology.dir/mesh3d6.cpp.o.d"
  "CMakeFiles/wsn_topology.dir/random_geometric.cpp.o"
  "CMakeFiles/wsn_topology.dir/random_geometric.cpp.o.d"
  "CMakeFiles/wsn_topology.dir/topology.cpp.o"
  "CMakeFiles/wsn_topology.dir/topology.cpp.o.d"
  "CMakeFiles/wsn_topology.dir/torus.cpp.o"
  "CMakeFiles/wsn_topology.dir/torus.cpp.o.d"
  "libwsn_topology.a"
  "libwsn_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
