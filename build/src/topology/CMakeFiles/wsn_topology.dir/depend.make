# Empty dependencies file for wsn_topology.
# This may be replaced when dependencies are built.
