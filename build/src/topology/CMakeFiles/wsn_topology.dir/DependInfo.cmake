
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/factory.cpp" "src/topology/CMakeFiles/wsn_topology.dir/factory.cpp.o" "gcc" "src/topology/CMakeFiles/wsn_topology.dir/factory.cpp.o.d"
  "/root/repo/src/topology/graph_algos.cpp" "src/topology/CMakeFiles/wsn_topology.dir/graph_algos.cpp.o" "gcc" "src/topology/CMakeFiles/wsn_topology.dir/graph_algos.cpp.o.d"
  "/root/repo/src/topology/mesh2d3.cpp" "src/topology/CMakeFiles/wsn_topology.dir/mesh2d3.cpp.o" "gcc" "src/topology/CMakeFiles/wsn_topology.dir/mesh2d3.cpp.o.d"
  "/root/repo/src/topology/mesh2d4.cpp" "src/topology/CMakeFiles/wsn_topology.dir/mesh2d4.cpp.o" "gcc" "src/topology/CMakeFiles/wsn_topology.dir/mesh2d4.cpp.o.d"
  "/root/repo/src/topology/mesh2d8.cpp" "src/topology/CMakeFiles/wsn_topology.dir/mesh2d8.cpp.o" "gcc" "src/topology/CMakeFiles/wsn_topology.dir/mesh2d8.cpp.o.d"
  "/root/repo/src/topology/mesh3d6.cpp" "src/topology/CMakeFiles/wsn_topology.dir/mesh3d6.cpp.o" "gcc" "src/topology/CMakeFiles/wsn_topology.dir/mesh3d6.cpp.o.d"
  "/root/repo/src/topology/random_geometric.cpp" "src/topology/CMakeFiles/wsn_topology.dir/random_geometric.cpp.o" "gcc" "src/topology/CMakeFiles/wsn_topology.dir/random_geometric.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/topology/CMakeFiles/wsn_topology.dir/topology.cpp.o" "gcc" "src/topology/CMakeFiles/wsn_topology.dir/topology.cpp.o.d"
  "/root/repo/src/topology/torus.cpp" "src/topology/CMakeFiles/wsn_topology.dir/torus.cpp.o" "gcc" "src/topology/CMakeFiles/wsn_topology.dir/torus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wsn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/wsn_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
