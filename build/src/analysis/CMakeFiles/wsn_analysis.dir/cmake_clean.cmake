file(REMOVE_RECURSE
  "CMakeFiles/wsn_analysis.dir/ascii_viz.cpp.o"
  "CMakeFiles/wsn_analysis.dir/ascii_viz.cpp.o.d"
  "CMakeFiles/wsn_analysis.dir/energy_balance.cpp.o"
  "CMakeFiles/wsn_analysis.dir/energy_balance.cpp.o.d"
  "CMakeFiles/wsn_analysis.dir/report.cpp.o"
  "CMakeFiles/wsn_analysis.dir/report.cpp.o.d"
  "CMakeFiles/wsn_analysis.dir/sweep.cpp.o"
  "CMakeFiles/wsn_analysis.dir/sweep.cpp.o.d"
  "libwsn_analysis.a"
  "libwsn_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
