# Empty dependencies file for wsn_common.
# This may be replaced when dependencies are built.
