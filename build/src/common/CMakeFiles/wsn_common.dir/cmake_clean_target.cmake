file(REMOVE_RECURSE
  "libwsn_common.a"
)
