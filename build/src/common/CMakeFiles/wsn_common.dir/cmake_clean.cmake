file(REMOVE_RECURSE
  "CMakeFiles/wsn_common.dir/cli.cpp.o"
  "CMakeFiles/wsn_common.dir/cli.cpp.o.d"
  "CMakeFiles/wsn_common.dir/csv.cpp.o"
  "CMakeFiles/wsn_common.dir/csv.cpp.o.d"
  "CMakeFiles/wsn_common.dir/parallel.cpp.o"
  "CMakeFiles/wsn_common.dir/parallel.cpp.o.d"
  "CMakeFiles/wsn_common.dir/random.cpp.o"
  "CMakeFiles/wsn_common.dir/random.cpp.o.d"
  "CMakeFiles/wsn_common.dir/string_util.cpp.o"
  "CMakeFiles/wsn_common.dir/string_util.cpp.o.d"
  "CMakeFiles/wsn_common.dir/table.cpp.o"
  "CMakeFiles/wsn_common.dir/table.cpp.o.d"
  "libwsn_common.a"
  "libwsn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
