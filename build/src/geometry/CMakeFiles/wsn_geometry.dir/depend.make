# Empty dependencies file for wsn_geometry.
# This may be replaced when dependencies are built.
