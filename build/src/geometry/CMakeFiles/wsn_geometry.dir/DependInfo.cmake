
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/diagonal.cpp" "src/geometry/CMakeFiles/wsn_geometry.dir/diagonal.cpp.o" "gcc" "src/geometry/CMakeFiles/wsn_geometry.dir/diagonal.cpp.o.d"
  "/root/repo/src/geometry/lattice.cpp" "src/geometry/CMakeFiles/wsn_geometry.dir/lattice.cpp.o" "gcc" "src/geometry/CMakeFiles/wsn_geometry.dir/lattice.cpp.o.d"
  "/root/repo/src/geometry/region.cpp" "src/geometry/CMakeFiles/wsn_geometry.dir/region.cpp.o" "gcc" "src/geometry/CMakeFiles/wsn_geometry.dir/region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wsn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
