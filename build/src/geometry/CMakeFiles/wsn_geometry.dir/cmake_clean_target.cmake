file(REMOVE_RECURSE
  "libwsn_geometry.a"
)
