file(REMOVE_RECURSE
  "CMakeFiles/wsn_geometry.dir/diagonal.cpp.o"
  "CMakeFiles/wsn_geometry.dir/diagonal.cpp.o.d"
  "CMakeFiles/wsn_geometry.dir/lattice.cpp.o"
  "CMakeFiles/wsn_geometry.dir/lattice.cpp.o.d"
  "CMakeFiles/wsn_geometry.dir/region.cpp.o"
  "CMakeFiles/wsn_geometry.dir/region.cpp.o.d"
  "libwsn_geometry.a"
  "libwsn_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
