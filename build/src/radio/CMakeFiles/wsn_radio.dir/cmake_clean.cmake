file(REMOVE_RECURSE
  "CMakeFiles/wsn_radio.dir/battery.cpp.o"
  "CMakeFiles/wsn_radio.dir/battery.cpp.o.d"
  "CMakeFiles/wsn_radio.dir/energy_model.cpp.o"
  "CMakeFiles/wsn_radio.dir/energy_model.cpp.o.d"
  "libwsn_radio.a"
  "libwsn_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
