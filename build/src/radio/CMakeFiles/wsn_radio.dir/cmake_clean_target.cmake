file(REMOVE_RECURSE
  "libwsn_radio.a"
)
