# Empty dependencies file for wsn_radio.
# This may be replaced when dependencies are built.
