# Empty dependencies file for meshbcast_tests.
# This may be replaced when dependencies are built.
