
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ascii_viz.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_ascii_viz.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_ascii_viz.cpp.o.d"
  "/root/repo/tests/test_battery.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_battery.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_battery.cpp.o.d"
  "/root/repo/tests/test_broadcast2d3.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_broadcast2d3.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_broadcast2d3.cpp.o.d"
  "/root/repo/tests/test_broadcast2d4.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_broadcast2d4.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_broadcast2d4.cpp.o.d"
  "/root/repo/tests/test_broadcast2d8.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_broadcast2d8.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_broadcast2d8.cpp.o.d"
  "/root/repo/tests/test_broadcast3d6.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_broadcast3d6.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_broadcast3d6.cpp.o.d"
  "/root/repo/tests/test_cds.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_cds.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_cds.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_csv.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_csv.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_csv.cpp.o.d"
  "/root/repo/tests/test_diagonal.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_diagonal.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_diagonal.cpp.o.d"
  "/root/repo/tests/test_energy_balance.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_energy_balance.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_energy_balance.cpp.o.d"
  "/root/repo/tests/test_energy_model.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_energy_model.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_energy_model.cpp.o.d"
  "/root/repo/tests/test_etr.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_etr.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_etr.cpp.o.d"
  "/root/repo/tests/test_flooding.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_flooding.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_flooding.cpp.o.d"
  "/root/repo/tests/test_gossip.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_gossip.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_gossip.cpp.o.d"
  "/root/repo/tests/test_graph_algos.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_graph_algos.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_graph_algos.cpp.o.d"
  "/root/repo/tests/test_ideal_model.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_ideal_model.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_ideal_model.cpp.o.d"
  "/root/repo/tests/test_integration_paper.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_integration_paper.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_integration_paper.cpp.o.d"
  "/root/repo/tests/test_lattice.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_lattice.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_lattice.cpp.o.d"
  "/root/repo/tests/test_lifetime.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_lifetime.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_lifetime.cpp.o.d"
  "/root/repo/tests/test_mesh2d3.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_mesh2d3.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_mesh2d3.cpp.o.d"
  "/root/repo/tests/test_mesh2d4.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_mesh2d4.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_mesh2d4.cpp.o.d"
  "/root/repo/tests/test_mesh2d8.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_mesh2d8.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_mesh2d8.cpp.o.d"
  "/root/repo/tests/test_mesh3d6.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_mesh3d6.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_mesh3d6.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_parallel.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_plan.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_plan.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_plan.cpp.o.d"
  "/root/repo/tests/test_random.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_random.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_random.cpp.o.d"
  "/root/repo/tests/test_random_geometric.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_random_geometric.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_random_geometric.cpp.o.d"
  "/root/repo/tests/test_region.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_region.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_region.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_resolver.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_resolver.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_resolver.cpp.o.d"
  "/root/repo/tests/test_sim_differential.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_sim_differential.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_sim_differential.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_string_util.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_string_util.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_string_util.cpp.o.d"
  "/root/repo/tests/test_sweep.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_sweep.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_sweep.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_torus.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_torus.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_torus.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_vec.cpp" "tests/CMakeFiles/meshbcast_tests.dir/test_vec.cpp.o" "gcc" "tests/CMakeFiles/meshbcast_tests.dir/test_vec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/wsn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/wsn_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/wsn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/wsn_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/wsn_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wsn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
